package exec

import (
	"errors"
	"strings"
	"testing"

	"bdbms/internal/annotation"
	"bdbms/internal/authz"
	"bdbms/internal/dependency"
	"bdbms/internal/provenance"
	"bdbms/internal/storage"
	"bdbms/internal/value"
)

// engineResolver adapts the storage engine to annotation.TableResolver.
type engineResolver struct{ eng *storage.Engine }

func (r engineResolver) ColumnCount(table string) (int, error) {
	tbl, err := r.eng.Table(table)
	if err != nil {
		return 0, err
	}
	return len(tbl.Schema().Columns), nil
}

func (r engineResolver) MaxRowID(table string) (int64, error) {
	tbl, err := r.eng.Table(table)
	if err != nil {
		return 0, err
	}
	return tbl.NextRowID() - 1, nil
}

func newSession(t *testing.T) *Session {
	t.Helper()
	eng := storage.NewMemoryEngine()
	ann := annotation.NewManager(eng.Catalog(), engineResolver{eng: eng})
	s := &Session{
		Eng:  eng,
		Ann:  ann,
		Prov: provenance.NewManager(ann),
		Dep:  dependency.NewManager(eng),
		Auth: authz.NewManager(eng),
		User: "alice",
	}
	return s
}

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

// loadFigure2 creates the DB1_Gene / DB2_Gene tables of Figures 2-3 with
// their annotations A1-A3 and B1-B5.
func loadFigure2(t *testing.T, s *Session) {
	t.Helper()
	script := `
	CREATE TABLE DB1_Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, GSequence SEQUENCE);
	CREATE TABLE DB2_Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, GSequence SEQUENCE);
	CREATE ANNOTATION TABLE GAnnotation ON DB1_Gene CATEGORY 'comment';
	CREATE ANNOTATION TABLE GAnnotation ON DB2_Gene CATEGORY 'comment';
	INSERT INTO DB1_Gene VALUES ('JW0080', 'mraW', 'ATGATGGAAAA');
	INSERT INTO DB1_Gene VALUES ('JW0082', 'ftsI', 'ATGAAAGCAGC');
	INSERT INTO DB1_Gene VALUES ('JW0055', 'yabP', 'ATGAAAGTATC');
	INSERT INTO DB1_Gene VALUES ('JW0078', 'fruR', 'GTGAAACTGGA');
	INSERT INTO DB2_Gene VALUES ('JW0080', 'mraW', 'ATGATGGAAAA');
	INSERT INTO DB2_Gene VALUES ('JW0041', 'fixB', 'ATGAACACGTT');
	INSERT INTO DB2_Gene VALUES ('JW0037', 'caiB', 'ATGGATCATCT');
	INSERT INTO DB2_Gene VALUES ('JW0027', 'ispH', 'ATGCAGATCCT');
	INSERT INTO DB2_Gene VALUES ('JW0055', 'yabP', 'ATGAAAGTATC');
	`
	if _, err := s.ExecAll(script); err != nil {
		t.Fatal(err)
	}
	// A1: first two tuples of DB1_Gene (published genes).
	mustExec(t, s, `ADD ANNOTATION TO DB1_Gene.GAnnotation
		VALUE '<Annotation>These genes are published in Smith et al.</Annotation>'
		ON (SELECT * FROM DB1_Gene WHERE GID = 'JW0080' OR GID = 'JW0082')`)
	// A2: tuples obtained from RegulonDB.
	mustExec(t, s, `ADD ANNOTATION TO DB1_Gene.GAnnotation
		VALUE '<Annotation>These genes were obtained from RegulonDB</Annotation>'
		ON (SELECT * FROM DB1_Gene WHERE GID = 'JW0078' OR GID = 'JW0055' OR GID = 'JW0082')`)
	// A3: single cell (GSequence of mraW).
	mustExec(t, s, `ADD ANNOTATION TO DB1_Gene.GAnnotation
		VALUE '<Annotation>Involved in methyltransferase activity</Annotation>'
		ON (SELECT GSequence FROM DB1_Gene WHERE GID = 'JW0080')`)
	// B1: curated rows of DB2_Gene.
	mustExec(t, s, `ADD ANNOTATION TO DB2_Gene.GAnnotation
		VALUE '<Annotation>Curated by user admin</Annotation>'
		ON (SELECT * FROM DB2_Gene WHERE GID = 'JW0080' OR GID = 'JW0041' OR GID = 'JW0037')`)
	// B3: entire GSequence column of DB2_Gene.
	mustExec(t, s, `ADD ANNOTATION TO DB2_Gene.GAnnotation
		VALUE '<Annotation>obtained from GenoBase</Annotation>'
		ON (SELECT GSequence FROM DB2_Gene)`)
	// B5: whole tuple of JW0080 (unknown function).
	mustExec(t, s, `ADD ANNOTATION TO DB2_Gene.GAnnotation
		VALUE '<Annotation>This gene has an unknown function</Annotation>'
		ON (SELECT * FROM DB2_Gene WHERE GID = 'JW0080')`)
}

func TestDDLAndBasicSelect(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, Score FLOAT)")
	mustExec(t, s, "INSERT INTO Gene VALUES ('JW1', 'a', 1.5), ('JW2', 'b', 2.5), ('JW3', 'c', 0.5)")
	res := mustExec(t, s, "SELECT GID, Score FROM Gene WHERE Score > 1 ORDER BY Score DESC")
	if len(res.Columns) != 2 || res.Columns[0] != "GID" {
		t.Errorf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 2 || res.Rows[0].Values[0].Text() != "JW2" {
		t.Errorf("rows = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT * FROM Gene LIMIT 1")
	if len(res.Rows) != 1 || len(res.Rows[0].Values) != 3 {
		t.Errorf("star select = %+v", res)
	}
	mustExec(t, s, "CREATE INDEX ON Gene (GName)")
	mustExec(t, s, "UPDATE Gene SET Score = 9.9 WHERE GID = 'JW1'")
	res = mustExec(t, s, "SELECT Score FROM Gene WHERE GID = 'JW1'")
	if res.Rows[0].Values[0].Float() != 9.9 {
		t.Error("update not visible")
	}
	res = mustExec(t, s, "DELETE FROM Gene WHERE GID = 'JW3'")
	if res.Affected != 1 {
		t.Error("delete affected wrong")
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM Gene")
	if res.Rows[0].Values[0].Int() != 2 {
		t.Errorf("count = %v", res.Rows[0].Values[0])
	}
	mustExec(t, s, "DROP TABLE Gene")
	if _, err := s.Exec("SELECT * FROM Gene"); err == nil {
		t.Error("dropped table still queryable")
	}
}

func TestAggregatesAndGroupBy(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE Match (Gene TEXT, Tool TEXT, Evalue FLOAT)")
	mustExec(t, s, `INSERT INTO Match VALUES
		('g1', 'blast', 0.1), ('g1', 'blast', 0.3), ('g2', 'blast', 0.2), ('g2', 'hmmer', 0.4)`)
	res := mustExec(t, s, "SELECT Gene, COUNT(*), AVG(Evalue), MIN(Evalue), MAX(Evalue), SUM(Evalue) FROM Match GROUP BY Gene ORDER BY Gene")
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	g1 := res.Rows[0]
	if g1.Values[0].Text() != "g1" || g1.Values[1].Int() != 2 {
		t.Errorf("g1 = %v", g1.Values)
	}
	if g1.Values[2].Float() != 0.2 || g1.Values[3].Float() != 0.1 || g1.Values[4].Float() != 0.3 {
		t.Errorf("g1 aggregates = %v", g1.Values)
	}
	res = mustExec(t, s, "SELECT Gene FROM Match GROUP BY Gene HAVING COUNT(*) > 1")
	if len(res.Rows) != 2 {
		t.Errorf("having rows = %d", len(res.Rows))
	}
	res = mustExec(t, s, "SELECT Tool, COUNT(Gene) FROM Match GROUP BY Tool HAVING COUNT(*) = 1")
	if len(res.Rows) != 1 || res.Rows[0].Values[0].Text() != "hmmer" {
		t.Errorf("having = %v", res.Rows)
	}
}

func TestAnnotationPropagationFigure2(t *testing.T) {
	s := newSession(t)
	loadFigure2(t, s)

	// Projecting GID from DB2_Gene propagates only B1, B4, B5-style
	// annotations (those covering GID cells), not the column annotation B3.
	res := mustExec(t, s, "SELECT GID FROM DB2_Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0080'")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	bodies := annBodies(res.Rows[0])
	if !containsBody(bodies, "Curated by user admin") || !containsBody(bodies, "unknown function") {
		t.Errorf("GID annotations = %v", bodies)
	}
	if containsBody(bodies, "GenoBase") {
		t.Errorf("column annotation B3 must not propagate with GID: %v", bodies)
	}

	// Selecting the whole tuple of JW0080 propagates B1, B3 and B5.
	res = mustExec(t, s, "SELECT * FROM DB2_Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0080'")
	bodies = annBodies(res.Rows[0])
	for _, want := range []string{"Curated by user admin", "GenoBase", "unknown function"} {
		if !containsBody(bodies, want) {
			t.Errorf("tuple annotations missing %q: %v", want, bodies)
		}
	}

	// Without an ANNOTATION clause nothing propagates.
	res = mustExec(t, s, "SELECT * FROM DB2_Gene WHERE GID = 'JW0080'")
	if len(annBodies(res.Rows[0])) != 0 {
		t.Error("annotations propagated without ANNOTATION clause")
	}

	// PROMOTE copies the GSequence annotations (A3, B3) onto the projected GID.
	res = mustExec(t, s, "SELECT GID PROMOTE (GSequence) FROM DB2_Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0080'")
	bodies = annBodies(res.Rows[0])
	if !containsBody(bodies, "GenoBase") {
		t.Errorf("PROMOTE did not copy column annotation: %v", bodies)
	}
}

func TestE6IntersectWithAnnotations(t *testing.T) {
	s := newSession(t)
	loadFigure2(t, s)

	// The paper's example: genes common to DB1_Gene and DB2_Gene along with
	// their annotations from both tables — one A-SQL statement instead of the
	// three-step manual plan (queries (a)-(c) in Section 3).
	res := mustExec(t, s, `
		SELECT GID, GName, GSequence FROM DB1_Gene ANNOTATION(GAnnotation)
		INTERSECT
		SELECT GID, GName, GSequence FROM DB2_Gene ANNOTATION(GAnnotation)`)
	if len(res.Rows) != 2 {
		t.Fatalf("common genes = %d, want 2 (JW0080, JW0055)", len(res.Rows))
	}
	byGID := map[string]ARow{}
	for _, r := range res.Rows {
		byGID[r.Values[0].Text()] = r
	}
	r80, ok := byGID["JW0080"]
	if !ok {
		t.Fatal("JW0080 missing from intersection")
	}
	bodies := annBodies(r80)
	// Annotations must be consolidated from BOTH tables: A1, A3 (DB1) and
	// B1, B3, B5 (DB2).
	for _, want := range []string{"published", "methyltransferase", "Curated by user admin", "GenoBase", "unknown function"} {
		if !containsBody(bodies, want) {
			t.Errorf("JW0080 missing annotation %q: got %v", want, bodies)
		}
	}
	r55 := byGID["JW0055"]
	bodies = annBodies(r55)
	if !containsBody(bodies, "RegulonDB") || !containsBody(bodies, "GenoBase") {
		t.Errorf("JW0055 annotations = %v", bodies)
	}
	if containsBody(bodies, "unknown function") {
		t.Errorf("JW0055 must not inherit JW0080's annotations: %v", bodies)
	}
}

func TestAWhereAndFilter(t *testing.T) {
	s := newSession(t)
	loadFigure2(t, s)

	// AWHERE: only tuples having a RegulonDB lineage annotation pass.
	res := mustExec(t, s, `SELECT GID FROM DB1_Gene ANNOTATION(GAnnotation)
		AWHERE ANN.VALUE LIKE '%RegulonDB%' ORDER BY GID`)
	if len(res.Rows) != 3 {
		t.Fatalf("AWHERE rows = %d, want 3", len(res.Rows))
	}
	// FILTER: all tuples pass but only GenoBase annotations survive.
	res = mustExec(t, s, `SELECT GSequence FROM DB2_Gene ANNOTATION(GAnnotation)
		FILTER ANN.VALUE LIKE '%GenoBase%'`)
	if len(res.Rows) != 5 {
		t.Fatalf("FILTER must keep all tuples, got %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		for _, b := range annBodies(r) {
			if !strings.Contains(b, "GenoBase") {
				t.Errorf("FILTER kept annotation %q", b)
			}
		}
	}
	// AWHERE on author.
	res = mustExec(t, s, `SELECT GID FROM DB1_Gene ANNOTATION(GAnnotation) AWHERE ANN.AUTHOR = 'alice'`)
	if len(res.Rows) == 0 {
		t.Error("AWHERE on author returned nothing")
	}
	// AHAVING over grouped annotations.
	res = mustExec(t, s, `SELECT GName FROM DB1_Gene ANNOTATION(GAnnotation)
		GROUP BY GName AHAVING ANN.VALUE LIKE '%methyltransferase%'`)
	if len(res.Rows) != 1 || res.Rows[0].Values[0].Text() != "mraW" {
		t.Errorf("AHAVING rows = %v", res.Rows)
	}
}

func TestArchiveRestoreStatements(t *testing.T) {
	s := newSession(t)
	loadFigure2(t, s)
	// Archive B5 ("unknown function"): it stops propagating.
	res := mustExec(t, s, `ARCHIVE ANNOTATION FROM DB2_Gene.GAnnotation
		ON (SELECT * FROM DB2_Gene WHERE GID = 'JW0080')`)
	if res.Affected == 0 {
		t.Fatal("nothing archived")
	}
	q := mustExec(t, s, "SELECT GID FROM DB2_Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0080'")
	if containsBody(annBodies(q.Rows[0]), "unknown function") {
		t.Error("archived annotation still propagates")
	}
	// Restore them.
	mustExec(t, s, `RESTORE ANNOTATION FROM DB2_Gene.GAnnotation
		ON (SELECT * FROM DB2_Gene WHERE GID = 'JW0080')`)
	q = mustExec(t, s, "SELECT GID FROM DB2_Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0080'")
	if !containsBody(annBodies(q.Rows[0]), "unknown function") {
		t.Error("restored annotation does not propagate")
	}
}

func TestContentApprovalStatements(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)")
	mustExec(t, s, "START CONTENT APPROVAL ON Gene APPROVED BY labadmin")
	mustExec(t, s, "INSERT INTO Gene VALUES ('JW0080', 'ATG')")
	mustExec(t, s, "UPDATE Gene SET GSequence = 'ATGCCC' WHERE GID = 'JW0080'")

	pending := mustExec(t, s, "SHOW PENDING OPERATIONS FOR Gene")
	if len(pending.Rows) != 2 {
		t.Fatalf("pending = %d", len(pending.Rows))
	}
	if !strings.Contains(pending.Rows[1].Values[5].Text(), "UPDATE Gene SET") {
		t.Errorf("inverse statement = %q", pending.Rows[1].Values[5].Text())
	}

	// The lab administrator approves the insert and disapproves the update.
	admin := &Session{Eng: s.Eng, Ann: s.Ann, Dep: s.Dep, Auth: s.Auth, User: "labadmin"}
	insertID := pending.Rows[0].Values[0].Int()
	updateID := pending.Rows[1].Values[0].Int()
	if _, err := admin.Exec("APPROVE OPERATION " + itoa(insertID)); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Exec("DISAPPROVE OPERATION " + itoa(updateID)); err != nil {
		t.Fatal(err)
	}
	// The disapproved update was rolled back.
	q := mustExec(t, s, "SELECT GSequence FROM Gene WHERE GID = 'JW0080'")
	if q.Rows[0].Values[0].Text() != "ATG" {
		t.Errorf("sequence after disapproval = %q", q.Rows[0].Values[0].Text())
	}
	// A non-approver cannot decide.
	mallory := &Session{Eng: s.Eng, Ann: s.Ann, Auth: s.Auth, User: "mallory"}
	mustExec(t, s, "INSERT INTO Gene VALUES ('JW0090', 'GGG')")
	pend := s.Auth.Pending("Gene")
	if _, err := mallory.Exec("APPROVE OPERATION " + itoa(pend[len(pend)-1].ID)); !errors.Is(err, authz.ErrNotApprover) {
		t.Errorf("non-approver approve: %v", err)
	}
	mustExec(t, s, "STOP CONTENT APPROVAL ON Gene")
	mustExec(t, s, "INSERT INTO Gene VALUES ('JW0100', 'TTT')")
	if n := len(s.Auth.Pending("Gene")); n != 1 {
		t.Errorf("pending after stop = %d", n)
	}
}

func TestGrantRevokeEnforcement(t *testing.T) {
	s := newSession(t)
	s.EnforceAuth = true
	s.Auth.MakeAdmin("alice")
	mustExec(t, s, "CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)")
	mustExec(t, s, "INSERT INTO Gene VALUES ('JW0080', 'ATG')")
	mustExec(t, s, "GRANT SELECT ON Gene TO bob")

	bob := &Session{Eng: s.Eng, Ann: s.Ann, Auth: s.Auth, User: "bob", EnforceAuth: true}
	if _, err := bob.Exec("SELECT * FROM Gene"); err != nil {
		t.Errorf("granted select: %v", err)
	}
	if _, err := bob.Exec("INSERT INTO Gene VALUES ('JW0090', 'C')"); !errors.Is(err, authz.ErrPermissionDenied) {
		t.Errorf("ungranted insert: %v", err)
	}
	if _, err := bob.Exec("DELETE FROM Gene"); !errors.Is(err, authz.ErrPermissionDenied) {
		t.Errorf("ungranted delete: %v", err)
	}
	mustExec(t, s, "REVOKE SELECT ON Gene FROM bob")
	if _, err := bob.Exec("SELECT * FROM Gene"); !errors.Is(err, authz.ErrPermissionDenied) {
		t.Errorf("revoked select: %v", err)
	}
}

func TestDependencyIntegrationOutdatedAnnotations(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)")
	mustExec(t, s, "CREATE TABLE Protein (PName TEXT, GID TEXT, PSequence SEQUENCE, PFunction TEXT)")
	mustExec(t, s, "INSERT INTO Gene VALUES ('JW0080', 'ATGATG')")
	mustExec(t, s, "INSERT INTO Protein VALUES ('pmraW', 'JW0080', 'MKV', 'Cell wall formation')")
	ptbl, _ := s.Eng.Table("Protein")
	ptbl.CreateIndex("GID")

	// Rule 2 only: PSequence -> PFunction via a non-executable lab experiment,
	// plus Rule 1 Gene -> Protein.PSequence marked non-executable so both
	// cascade steps are visible as outdated marks.
	if _, err := s.Dep.AddRule(dependency.Rule{
		Sources: []dependency.ColumnRef{{Table: "Gene", Column: "GSequence"}},
		Targets: []dependency.ColumnRef{{Table: "Protein", Column: "PSequence"}},
		Proc:    dependency.Procedure{Name: "Prediction tool P", Executable: false},
		Link:    &dependency.Link{SourceColumn: "GID", TargetColumn: "GID"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Dep.AddRule(dependency.Rule{
		Sources: []dependency.ColumnRef{{Table: "Protein", Column: "PSequence"}},
		Targets: []dependency.ColumnRef{{Table: "Protein", Column: "PFunction"}},
		Proc:    dependency.Procedure{Name: "Lab experiment", Executable: false},
	}); err != nil {
		t.Fatal(err)
	}

	// An A-SQL UPDATE triggers the cascade.
	mustExec(t, s, "UPDATE Gene SET GSequence = 'CCCGGG' WHERE GID = 'JW0080'")
	if !s.Dep.IsOutdated("Protein", 1, "PSequence") || !s.Dep.IsOutdated("Protein", 1, "PFunction") {
		t.Fatal("cascade did not mark protein cells outdated")
	}
	// Querying the protein propagates OUTDATED warnings as annotations.
	res := mustExec(t, s, "SELECT PSequence, PFunction FROM Protein")
	bodies := annBodies(res.Rows[0])
	found := 0
	for _, b := range bodies {
		if strings.Contains(b, "OUTDATED") {
			found++
		}
	}
	if found < 2 {
		t.Errorf("outdated annotations = %v", bodies)
	}
}

func TestSetOperationsUnionExcept(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE A (x INT)")
	mustExec(t, s, "CREATE TABLE B (x INT)")
	mustExec(t, s, "INSERT INTO A VALUES (1), (2), (3)")
	mustExec(t, s, "INSERT INTO B VALUES (2), (3), (4)")
	union := mustExec(t, s, "SELECT x FROM A UNION SELECT x FROM B ORDER BY x")
	if len(union.Rows) != 4 {
		t.Errorf("union = %d rows", len(union.Rows))
	}
	except := mustExec(t, s, "SELECT x FROM A EXCEPT SELECT x FROM B")
	if len(except.Rows) != 1 || except.Rows[0].Values[0].Int() != 1 {
		t.Errorf("except = %v", except.Rows)
	}
	distinct := mustExec(t, s, "SELECT DISTINCT x FROM A UNION SELECT x FROM A")
	if len(distinct.Rows) != 3 {
		t.Errorf("distinct union = %d", len(distinct.Rows))
	}
}

func TestJoinTwoTables(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE Gene (GID TEXT, GName TEXT)")
	mustExec(t, s, "CREATE TABLE Protein (PName TEXT, GID TEXT)")
	mustExec(t, s, "INSERT INTO Gene VALUES ('g1', 'mraW'), ('g2', 'ftsI')")
	mustExec(t, s, "INSERT INTO Protein VALUES ('p1', 'g1'), ('p2', 'g2'), ('p3', 'g1')")
	res := mustExec(t, s, `SELECT G.GName, P.PName FROM Gene G, Protein P WHERE G.GID = P.GID ORDER BY PName`)
	if len(res.Rows) != 3 {
		t.Fatalf("join rows = %d", len(res.Rows))
	}
	if res.Rows[0].Values[0].Text() != "mraW" || res.Rows[0].Values[1].Text() != "p1" {
		t.Errorf("first join row = %v", res.Rows[0].Values)
	}
	// Ambiguous column error.
	if _, err := s.Exec("SELECT GID FROM Gene G, Protein P"); !errors.Is(err, ErrAmbiguousColumn) {
		t.Errorf("ambiguous column: %v", err)
	}
	// Unknown column error.
	if _, err := s.Exec("SELECT Nope FROM Gene"); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("unknown column: %v", err)
	}
}

func TestInsertWithColumnListAndNulls(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE T (a INT, b TEXT, c FLOAT)")
	mustExec(t, s, "INSERT INTO T (b, a) VALUES ('x', 1)")
	res := mustExec(t, s, "SELECT a, b, c FROM T")
	if res.Rows[0].Values[0].Int() != 1 || res.Rows[0].Values[1].Text() != "x" || !res.Rows[0].Values[2].IsNull() {
		t.Errorf("row = %v", res.Rows[0].Values)
	}
	res = mustExec(t, s, "SELECT a FROM T WHERE c IS NULL")
	if len(res.Rows) != 1 {
		t.Error("IS NULL failed")
	}
	res = mustExec(t, s, "SELECT a FROM T WHERE c IS NOT NULL")
	if len(res.Rows) != 0 {
		t.Error("IS NOT NULL failed")
	}
	if _, err := s.Exec("INSERT INTO T (a) VALUES (1, 2)"); err == nil {
		t.Error("column/value mismatch should fail")
	}
	if _, err := s.Exec("INSERT INTO T VALUES (1)"); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := s.Exec("INSERT INTO T (zzz) VALUES (1)"); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"%Regulon%", "obtained from RegulonDB", true},
		{"Regulon%", "obtained from RegulonDB", false},
		{"obtained%", "obtained from RegulonDB", true},
		{"%DB", "obtained from RegulonDB", true},
		{"_bc", "abc", true},
		{"_bc", "bc", false},
		{"a%c", "abbbc", true},
		{"a%c", "ab", false},
		{"", "", true},
		{"%%", "anything", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.pattern, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func annBodies(r ARow) []string {
	var out []string
	for _, a := range r.AnnotationsFlat() {
		out = append(out, a.PlainBody())
	}
	return out
}

func containsBody(bodies []string, sub string) bool {
	for _, b := range bodies {
		if strings.Contains(b, sub) {
			return true
		}
	}
	return false
}

func itoa(n int64) string {
	return strings.TrimSpace(value.NewInt(n).String())
}
