package exec

// ORDER BY execution: a shared order plan (used by both the naive reference
// and the streaming pipeline, so the two paths cannot diverge), an external
// merge-sort iterator with bounded memory, and a Top-N heap operator the
// planner selects for ORDER BY + LIMIT.
//
// An order key resolves in two steps: first against the output columns by
// name (the only resolution the engine historically supported), then — for
// SELECTs without DISTINCT or a set operation — against the FROM bindings,
// which is what allows ordering by columns that are not projected. With
// DISTINCT or a set operation the pre-projection row no longer exists when
// ordering runs, so binding-resolved keys are rejected, as standard SQL does.

import (
	"fmt"
	"sort"
	"strings"

	"bdbms/internal/heap"
	"bdbms/internal/sqlparse"
	"bdbms/internal/value"
)

// orderKey is one resolved ORDER BY item.
type orderKey struct {
	// outIdx >= 0 sorts by that projected output column.
	outIdx int
	// slot is the pre-projection value slot when outIdx < 0.
	slot int
	desc bool
}

// buildOrderPlan resolves the ORDER BY list against the output columns and,
// unless outputOnly, the binding layout.
func buildOrderPlan(orderBy []sqlparse.OrderItem, cols []string, bindings []binding, outputOnly bool) ([]orderKey, error) {
	var keys []orderKey
	for _, item := range orderBy {
		col, ok := item.Expr.(*sqlparse.ColumnExpr)
		if !ok {
			return nil, fmt.Errorf("%w: ORDER BY supports column references only", ErrUnsupported)
		}
		key := orderKey{outIdx: -1, slot: -1, desc: item.Desc}
		for i, name := range cols {
			if strings.EqualFold(name, col.Column) {
				key.outIdx = i
				break
			}
		}
		if key.outIdx < 0 {
			idx, _, err := resolveColumn(bindings, col)
			if err != nil {
				return nil, fmt.Errorf("%w: ORDER BY column %s", ErrUnknownColumn, col.Column)
			}
			if outputOnly {
				return nil, fmt.Errorf("%w: ORDER BY column %s must appear in the SELECT list when DISTINCT or a set operation is used", ErrUnsupported, col.Column)
			}
			key.slot = idx
		}
		keys = append(keys, key)
	}
	return keys, nil
}

// sortElisionColumn reports whether the SELECT's ordering can be satisfied by
// scanning its single source in index order instead of sorting, and names the
// ordering column. Eligible shape: one source read by full scan (probes
// already subset the heap in probe order), no grouping or aggregation, and a
// single ascending key resolving to a NOT NULL indexed table column. NOT NULL
// matters because B+-trees omit NULL keys, so only then does the index stream
// every live row; ascending-only because the tree ascends. EncodeKey is
// order-preserving per type and the index yields RowID-ascending runs within
// equal keys — exactly the order a stable sort over the RowID-ordered scan
// produces, so elision is invisible to the equivalence suite.
func sortElisionColumn(sel *sqlparse.SelectStmt, phys *physicalPlan, proj *projector, orderKeys []orderKey) (string, bool) {
	if len(phys.sources) != 1 || len(phys.steps) != 0 {
		return "", false
	}
	if len(sel.GroupBy) > 0 || hasAggregate(sel.Items) || sel.Having != nil {
		return "", false
	}
	if len(orderKeys) != 1 || orderKeys[0].desc {
		return "", false
	}
	src := phys.sources[0]
	if src.access.kind != accessFullScan {
		return "", false
	}
	slot := orderKeys[0].slot
	if orderKeys[0].outIdx >= 0 {
		oc := proj.outCols[orderKeys[0].outIdx]
		switch {
		case oc.index >= 0: // star-expanded: direct slot
			slot = oc.index
		default:
			// Explicit item: only a plain column reference is a raw slot
			// value; computed expressions keep the sort.
			ce, ok := oc.item.expr.(*sqlparse.ColumnExpr)
			if !ok {
				return "", false
			}
			idx, _, err := resolveColumn(proj.bindings, ce)
			if err != nil {
				return "", false
			}
			slot = idx
		}
	}
	ci := slot - src.offset
	schema := src.tbl.Schema()
	if ci < 0 || ci >= len(schema.Columns) {
		return "", false
	}
	col := schema.Columns[ci]
	if !col.NotNull || !src.tbl.HasIndex(col.Name) {
		return "", false
	}
	return col.Name, true
}

// compareKeyRows orders two extracted key rows. Incomparable values (type
// mismatch) are treated as equal on that key, exactly like the reference
// sort's comparator.
func compareKeyRows(a, b value.Row, keys []orderKey) int {
	for i, k := range keys {
		c, err := a[i].Compare(b[i])
		if err != nil || c == 0 {
			continue
		}
		if k.desc {
			return -c
		}
		return c
	}
	return 0
}

// --- projection stages ----------------------------------------------------------------------

// aRowIter is the post-projection iterator interface: DISTINCT, set
// operations and ordering operate on projected rows.
type aRowIter interface {
	Next() (ARow, bool, error)
}

// projectIter projects pipeline rows one at a time; the basic streaming
// SELECT is scan -> decorate -> project.
type projectIter struct {
	in   rowIter
	proj *projector
}

func (it *projectIter) Next() (ARow, bool, error) {
	r, ok, err := it.in.Next()
	if err != nil || !ok {
		return ARow{}, false, err
	}
	out, err := it.proj.row(r)
	if err != nil {
		return ARow{}, false, err
	}
	return out, true, nil
}

// keyedRow pairs a projected row with its extracted sort key.
type keyedRow struct {
	row ARow
	key value.Row
}

// keyedIter feeds the sort operators.
type keyedIter interface {
	Next() (keyedRow, bool, error)
}

// projectKeyIter projects and extracts sort keys from both worlds: output
// columns from the projected row, binding-resolved keys from the
// pre-projection row (which is how ORDER BY on non-projected columns works).
type projectKeyIter struct {
	in   rowIter
	proj *projector
	keys []orderKey
}

func (it *projectKeyIter) Next() (keyedRow, bool, error) {
	r, ok, err := it.in.Next()
	if err != nil || !ok {
		return keyedRow{}, false, err
	}
	out, err := it.proj.row(r)
	if err != nil {
		return keyedRow{}, false, err
	}
	key := make(value.Row, len(it.keys))
	for i, k := range it.keys {
		if k.outIdx >= 0 {
			key[i] = out.Values[k.outIdx]
		} else {
			key[i] = r.values[k.slot]
		}
	}
	return keyedRow{row: out, key: key}, true, nil
}

// outColKeyIter extracts sort keys from already-projected rows (the ordering
// stage above DISTINCT and set operations, where only output columns are
// legal keys).
type outColKeyIter struct {
	in   aRowIter
	keys []orderKey
}

func (it *outColKeyIter) Next() (keyedRow, bool, error) {
	row, ok, err := it.in.Next()
	if err != nil || !ok {
		return keyedRow{}, false, err
	}
	key := make(value.Row, len(it.keys))
	for i, k := range it.keys {
		key[i] = row.Values[k.outIdx]
	}
	return keyedRow{row: row, key: key}, true, nil
}

// --- external merge sort --------------------------------------------------------------------

// sortedBatchRow is one row of the in-memory sort batch.
type sortedBatchRow struct {
	keyedRow
	seq uint64
}

// sortIter is the external merge-sort operator: rows accumulate in an
// in-memory batch up to the budget; each full batch is sorted and written as
// a run on the operator's temp file; the output phase k-way-merges the runs
// (ties broken by input sequence, which is what makes the sort stable).
type sortIter struct {
	in     keyedIter
	keys   []orderKey
	budget int
	sf     *spillFile

	batch      []sortedBatchRow
	batchBytes int
	runs       []heap.Run
	seq        uint64
	encBuf     []byte

	started bool
	pos     int            // in-memory emit cursor
	heads   []*sortRunHead // merge emit state
}

func newSortIter(in keyedIter, keys []orderKey, budget int, sf *spillFile) *sortIter {
	return &sortIter{in: in, keys: keys, budget: budget, sf: sf}
}

func (s *sortIter) less(a, b *sortedBatchRow) bool {
	if c := compareKeyRows(a.key, b.key, s.keys); c != 0 {
		return c < 0
	}
	return a.seq < b.seq
}

func (s *sortIter) sortBatch() {
	sort.Slice(s.batch, func(i, j int) bool { return s.less(&s.batch[i], &s.batch[j]) })
}

func (s *sortIter) spillBatch() error {
	s.sortBatch()
	spillEvents.Add(1)
	pgr, err := s.sf.pager()
	if err != nil {
		return err
	}
	w := heap.NewRunWriter(pgr)
	for i := range s.batch {
		r := &s.batch[i]
		s.encBuf = s.encBuf[:0]
		s.encBuf = appendUvarint(s.encBuf, r.seq)
		s.encBuf = appendValueRow(s.encBuf, r.key)
		s.encBuf = appendARowRec(s.encBuf, r.row)
		if err := w.Append(s.encBuf); err != nil {
			return err
		}
	}
	run, err := w.Finish()
	if err != nil {
		return err
	}
	s.runs = append(s.runs, run)
	s.batch = s.batch[:0]
	s.batchBytes = 0
	return nil
}

func (s *sortIter) consume() error {
	for {
		kr, ok, err := s.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.batch = append(s.batch, sortedBatchRow{keyedRow: kr, seq: s.seq})
		s.seq++
		s.batchBytes += sizeOfARow(kr.row) + sizeOfValues(kr.key)
		if s.batchBytes > s.budget {
			if err := s.spillBatch(); err != nil {
				return err
			}
		}
	}
	if len(s.runs) == 0 {
		s.sortBatch()
		return nil
	}
	if len(s.batch) > 0 {
		if err := s.spillBatch(); err != nil {
			return err
		}
	}
	return s.openMerge()
}

// sortRunHead is the head element of one run in the k-way merge.
type sortRunHead struct {
	rd  *heap.RunReader
	cur sortedBatchRow
}

func (s *sortIter) advance(h *sortRunHead) (bool, error) {
	rec, ok, err := h.rd.Next()
	if err != nil || !ok {
		return false, err
	}
	r := &byteReader{buf: rec}
	h.cur.seq = r.uvarint()
	h.cur.key = r.row()
	h.cur.row = r.aRow()
	if r.err != nil {
		return false, r.err
	}
	return true, nil
}

func (s *sortIter) openMerge() error {
	pgr, err := s.sf.pager()
	if err != nil {
		return err
	}
	for _, run := range s.runs {
		h := &sortRunHead{rd: heap.NewRunReader(pgr, run)}
		ok, err := s.advance(h)
		if err != nil {
			return err
		}
		if ok {
			s.heads = append(s.heads, h)
		}
	}
	return nil
}

func (s *sortIter) Next() (ARow, bool, error) {
	if !s.started {
		s.started = true
		if err := s.consume(); err != nil {
			return ARow{}, false, err
		}
	}
	if s.heads != nil {
		if len(s.heads) == 0 {
			return ARow{}, false, nil
		}
		best := 0
		for i := 1; i < len(s.heads); i++ {
			if s.less(&s.heads[i].cur, &s.heads[best].cur) {
				best = i
			}
		}
		row := s.heads[best].cur.row
		ok, err := s.advance(s.heads[best])
		if err != nil {
			return ARow{}, false, err
		}
		if !ok {
			s.heads = append(s.heads[:best], s.heads[best+1:]...)
		}
		return row, true, nil
	}
	if s.pos >= len(s.batch) {
		return ARow{}, false, nil
	}
	row := s.batch[s.pos].row
	s.pos++
	return row, true, nil
}

// --- Top-N ----------------------------------------------------------------------------------

// topNIter keeps only the first N rows in sort order while consuming its
// input: a bounded max-heap ordered by (key, input sequence) whose root is
// the current worst survivor. The result memory is O(N) regardless of input
// size — the operator the planner picks for ORDER BY + LIMIT.
type topNIter struct {
	in    keyedIter
	keys  []orderKey
	limit int

	h       []sortedBatchRow // max-heap, worst on top
	seq     uint64
	started bool
	out     []sortedBatchRow
	pos     int
}

func newTopNIter(in keyedIter, keys []orderKey, limit int) *topNIter {
	return &topNIter{in: in, keys: keys, limit: limit}
}

// worse reports whether a sorts after b under (key, seq) — the heap order.
func (t *topNIter) worse(a, b *sortedBatchRow) bool {
	if c := compareKeyRows(a.key, b.key, t.keys); c != 0 {
		return c > 0
	}
	return a.seq > b.seq
}

func (t *topNIter) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.worse(&t.h[i], &t.h[parent]) {
			return
		}
		t.h[i], t.h[parent] = t.h[parent], t.h[i]
		i = parent
	}
}

func (t *topNIter) heapDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		biggest := i
		if l < len(t.h) && t.worse(&t.h[l], &t.h[biggest]) {
			biggest = l
		}
		if r < len(t.h) && t.worse(&t.h[r], &t.h[biggest]) {
			biggest = r
		}
		if biggest == i {
			return
		}
		t.h[i], t.h[biggest] = t.h[biggest], t.h[i]
		i = biggest
	}
}

func (t *topNIter) consume() error {
	for {
		kr, ok, err := t.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		row := sortedBatchRow{keyedRow: kr, seq: t.seq}
		t.seq++
		if t.limit <= 0 {
			continue // degenerate LIMIT 0: drain for error equivalence, keep nothing
		}
		if len(t.h) < t.limit {
			t.h = append(t.h, row)
			t.heapUp(len(t.h) - 1)
			continue
		}
		if t.worse(&t.h[0], &row) { // row beats the current worst survivor
			t.h[0] = row
			t.heapDown(0)
		}
	}
	// Emit in ascending order: pop the worst repeatedly into the tail.
	t.out = make([]sortedBatchRow, len(t.h))
	for i := len(t.h) - 1; i >= 0; i-- {
		t.out[i] = t.h[0]
		last := len(t.h) - 1
		t.h[0] = t.h[last]
		t.h = t.h[:last]
		if last > 0 {
			t.heapDown(0)
		}
	}
	return nil
}

func (t *topNIter) Next() (ARow, bool, error) {
	if !t.started {
		t.started = true
		if err := t.consume(); err != nil {
			return ARow{}, false, err
		}
	}
	if t.pos >= len(t.out) {
		return ARow{}, false, nil
	}
	row := t.out[t.pos].row
	t.pos++
	return row, true, nil
}
