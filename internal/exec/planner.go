package exec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"bdbms/internal/annotation"
	"bdbms/internal/dependency"
	"bdbms/internal/sqlparse"
	"bdbms/internal/storage"
	"bdbms/internal/value"
)

// This file is the query planner in front of the streaming executor. It
// decomposes the WHERE clause into AND-conjuncts and decides, per conjunct,
// where in the pipeline it runs:
//
//   - single-table conjuncts are pushed below the join into the table scan;
//     when such a conjunct is an equality or range comparison against a
//     constant on an indexed column (primary key or CREATE INDEX column),
//     the scan probes the B+-tree instead of walking the heap;
//   - equality conjuncts between columns of two different tables become the
//     keys of a hash equi-join; sources with no connecting equality fall
//     back to a block nested-loop cross join;
//   - everything else (conjuncts spanning several tables, aggregates,
//     unresolvable references) is evaluated as a residual filter above the
//     join it depends on.
//
// Pushed predicates that drive an index probe are re-applied as scan filters:
// the probe only needs to produce a superset of the matching RowIDs, which
// keeps the bound arithmetic below simple and safe.
//
// Result equivalence with the naive executor holds for every query that
// evaluates without error. Error behavior on ill-typed queries can differ:
// pushing a conjunct changes which rows it is evaluated against, so a
// type-mismatch error may surface from a planned scan where the naive
// cross product happened to be empty (and a residual conjunct's resolution
// error may be suppressed when no rows survive the join). This is the
// standard pushdown tradeoff; SQL leaves predicate evaluation order
// unspecified.

var errUnresolvedSlot = errors.New("exec: internal: unresolved predicate slot")

// compareClass groups value types that Compare treats as one domain.
type compareClass int

const (
	classOther compareClass = iota
	classNumeric
	classString
	classBool
	classTime
)

func classOf(t value.Type) compareClass {
	switch t {
	case value.Int, value.Float:
		return classNumeric
	case value.Text, value.Sequence:
		return classString
	case value.Bool:
		return classBool
	case value.Timestamp:
		return classTime
	default:
		return classOther
	}
}

// accessKind selects how a source's RowIDs are produced.
type accessKind int

const (
	accessFullScan accessKind = iota
	accessIndexEq
	accessIndexRange
	// accessIndexEqParam is an equality probe whose comparison value contains
	// a placeholder: the probe key is computed from the bound parameters at
	// execution time, so a prepared statement keeps its index plan across
	// re-executions with different arguments.
	accessIndexEqParam
)

// accessPath describes the index probe of one source, when it has one.
type accessPath struct {
	kind     accessKind
	column   string
	eq       value.Value
	eqExpr   sqlparse.Expr // deferred probe value (accessIndexEqParam)
	lo, hi   value.Value   // NULL = unbounded
	loStrict bool
	hiStrict bool
}

// sourcePlan is one FROM entry with its pushed predicates and access path.
type sourcePlan struct {
	ref     sqlparse.TableRef
	tbl     *storage.Table
	offset  int // first global value slot of this source
	numCols int
	access  accessPath
	preds   []compiledPred // single-table conjuncts, applied inside the scan
}

// joinStep combines the accumulated left prefix with one more source.
type joinStep struct {
	right    *sourcePlan
	leftKey  []joinKeyCol   // global slots into the left prefix row
	rightKey []joinKeyCol   // local slots into the right source row
	post     []compiledPred // multi-source conjuncts completed by this join
}

// physicalPlan is the planned FROM/WHERE pipeline of one SELECT.
type physicalPlan struct {
	sources []*sourcePlan
	steps   []joinStep // len(sources)-1 entries, in EXECUTION order
	// residual holds WHERE parts the pipeline could not place (aggregates,
	// unresolvable columns); they are evaluated naively on the final rows.
	residual []sqlparse.Expr
	// order is the execution order of the sources (indexes into sources);
	// nil or the identity means syntactic execution. steps are compiled
	// against this order, with prefix-side slots in the execution layout.
	order []int
	// reordered reports that order differs from the syntactic FROM order;
	// the pipeline then restores the syntactic column layout and row order
	// above the joins (restoreIter), so every downstream stage — residual
	// filters, decoration, projection, ordering — is oblivious.
	reordered bool
	// srcRows, stepRows and estRows are the cost model's cardinality
	// estimates: per source (syntactic index), after each execution step,
	// and out of the whole join pipeline. noStats marks sources planned
	// without table statistics. EXPLAIN renders all of them.
	srcRows  []float64
	stepRows []float64
	estRows  float64
	noStats  []bool
}

// execOrder returns the execution order of the sources, defaulting to the
// syntactic order.
func (p *physicalPlan) execOrder() []int {
	if p.order != nil {
		return p.order
	}
	order := make([]int, len(p.sources))
	for i := range order {
		order[i] = i
	}
	return order
}

// String renders the plan shape in execution order for tests and debugging,
// e.g. "IndexScan(gene.gid =) -> HashJoin(protein) -> Filter".
func (p *physicalPlan) String() string {
	var b strings.Builder
	for i, si := range p.execOrder() {
		src := p.sources[si]
		if i > 0 {
			step := p.steps[i-1]
			if len(step.leftKey) > 0 {
				fmt.Fprintf(&b, " -> HashJoin(%s", src.tbl.Name())
			} else {
				fmt.Fprintf(&b, " -> NestedLoop(%s", src.tbl.Name())
			}
			b.WriteString(describeScan(src))
			b.WriteString(")")
			if len(step.post) > 0 {
				b.WriteString(" -> Filter")
			}
			continue
		}
		b.WriteString(scanDesc(src))
		if len(src.preds) > 0 {
			b.WriteString(" -> Filter")
		}
	}
	if p.reordered {
		b.WriteString(" -> Restore")
	}
	if len(p.residual) > 0 {
		b.WriteString(" -> Residual")
	}
	return b.String()
}

// scanDesc renders a source's access path, e.g. "SeqScan(T)" or
// "IndexScan(T.Col =)".
func scanDesc(src *sourcePlan) string {
	switch src.access.kind {
	case accessIndexEq:
		return fmt.Sprintf("IndexScan(%s.%s =)", src.tbl.Name(), src.access.column)
	case accessIndexEqParam:
		return fmt.Sprintf("IndexScan(%s.%s = ?)", src.tbl.Name(), src.access.column)
	case accessIndexRange:
		return fmt.Sprintf("IndexScan(%s.%s range)", src.tbl.Name(), src.access.column)
	default:
		return fmt.Sprintf("SeqScan(%s)", src.tbl.Name())
	}
}

func describeScan(src *sourcePlan) string {
	switch src.access.kind {
	case accessIndexEq:
		return fmt.Sprintf(" via IndexScan(%s.%s =)", src.tbl.Name(), src.access.column)
	case accessIndexEqParam:
		return fmt.Sprintf(" via IndexScan(%s.%s = ?)", src.tbl.Name(), src.access.column)
	case accessIndexRange:
		return fmt.Sprintf(" via IndexScan(%s.%s range)", src.tbl.Name(), src.access.column)
	default:
		return ""
	}
}

// --- conjunct analysis ---------------------------------------------------------------------

// splitAnd flattens top-level ANDs into conjuncts.
func splitAnd(e sqlparse.Expr, out []sqlparse.Expr) []sqlparse.Expr {
	if bin, ok := e.(*sqlparse.BinaryExpr); ok && bin.Op == "AND" {
		return splitAnd(bin.Right, splitAnd(bin.Left, out))
	}
	return append(out, e)
}

// walkColumns visits every ColumnExpr in e. It returns false if e contains an
// aggregate (which cannot be pushed below grouping).
func walkColumns(e sqlparse.Expr, fn func(*sqlparse.ColumnExpr)) bool {
	switch ex := e.(type) {
	case nil:
		return true
	case *sqlparse.ColumnExpr:
		fn(ex)
		return true
	case *sqlparse.LiteralExpr:
		return true
	case *sqlparse.UnaryExpr:
		return walkColumns(ex.Expr, fn)
	case *sqlparse.IsNullExpr:
		return walkColumns(ex.Expr, fn)
	case *sqlparse.BinaryExpr:
		return walkColumns(ex.Left, fn) && walkColumns(ex.Right, fn)
	case *sqlparse.PlaceholderExpr:
		// A placeholder references no columns; the value is bound at
		// execution time, so the conjunct stays pushable.
		return true
	case *sqlparse.AggregateExpr:
		return false
	default:
		return false
	}
}

// analyzedConjunct is one WHERE conjunct with resolved column slots.
type analyzedConjunct struct {
	expr    sqlparse.Expr
	slots   map[*sqlparse.ColumnExpr]int
	sources map[int]bool // source indexes referenced
	maxSrc  int
}

// analyzeConjunct resolves the conjunct's columns against the full binding
// list. ok is false when the conjunct cannot be planned (aggregate or
// resolution failure) and must run as a naive residual.
func analyzeConjunct(e sqlparse.Expr, bindings []binding, slotSource []int) (analyzedConjunct, bool) {
	ac := analyzedConjunct{
		expr:    e,
		slots:   make(map[*sqlparse.ColumnExpr]int),
		sources: make(map[int]bool),
	}
	resolved := true
	pure := walkColumns(e, func(col *sqlparse.ColumnExpr) {
		idx, _, err := resolveColumn(bindings, col)
		if err != nil {
			resolved = false
			return
		}
		ac.slots[col] = idx
		src := slotSource[idx]
		ac.sources[src] = true
		if src > ac.maxSrc {
			ac.maxSrc = src
		}
	})
	return ac, pure && resolved
}

// constOperand reports whether e references no columns or aggregates (it may
// contain placeholders); used to recognize `col = <const>` index probes with
// computed constants and `col = ?` deferred probes.
func constOperand(e sqlparse.Expr) bool {
	hasCol := false
	pure := walkColumns(e, func(*sqlparse.ColumnExpr) { hasCol = true })
	return pure && !hasCol
}

// containsPlaceholder reports whether any `?` marker appears in e.
func containsPlaceholder(e sqlparse.Expr) bool {
	found := false
	sqlparse.WalkExpr(e, func(sub sqlparse.Expr) {
		if _, ok := sub.(*sqlparse.PlaceholderExpr); ok {
			found = true
		}
	})
	return found
}

// comparisonParts matches `col op const` / `const op col` and returns the
// column, the constant expression (columns- and aggregate-free, possibly
// containing placeholders) and the op normalized to put the column on the
// left.
func comparisonParts(e sqlparse.Expr) (*sqlparse.ColumnExpr, sqlparse.Expr, string, bool) {
	bin, ok := e.(*sqlparse.BinaryExpr)
	if !ok {
		return nil, nil, "", false
	}
	switch bin.Op {
	case "=", "<", "<=", ">", ">=":
	default:
		return nil, nil, "", false
	}
	if col, ok := bin.Left.(*sqlparse.ColumnExpr); ok && constOperand(bin.Right) {
		return col, bin.Right, bin.Op, true
	}
	if col, ok := bin.Right.(*sqlparse.ColumnExpr); ok && constOperand(bin.Left) {
		return col, bin.Left, flipOp(bin.Op), true
	}
	return nil, nil, "", false
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// indexProbeValue converts a constant comparison operand to the indexed
// column's type so its EncodeKey form matches the stored keys. exact reports
// whether the conversion preserves the comparison (when false, the caller
// must widen range bounds to inclusive; equality stays correct because the
// original predicate is re-applied above the probe). usable is false when no
// index probe can be derived at all.
func indexProbeValue(colType value.Type, v value.Value) (probe value.Value, exact, usable bool) {
	if v.IsNull() {
		return value.Value{}, false, false
	}
	if v.Type() == colType {
		return v, true, true
	}
	switch classOf(colType) {
	case classNumeric:
		if classOf(v.Type()) != classNumeric {
			return value.Value{}, false, false
		}
		if colType == value.Float {
			// Compare evaluates both sides as float64, so the cast IS the
			// comparison semantics.
			return value.NewFloat(v.Float()), true, true
		}
		// INT column, FLOAT constant: probe the nearest integers on either
		// side; bounds become inclusive supersets unless f is integral.
		f := v.Float()
		if f > math.MaxInt64/2 || f < math.MinInt64/2 {
			return value.Value{}, false, false
		}
		return value.NewInt(int64(math.Floor(f))), f == math.Trunc(f), true
	case classString:
		if classOf(v.Type()) != classString {
			return value.Value{}, false, false
		}
		if colType == value.Sequence {
			return value.NewSequence(v.Text()), true, true
		}
		return value.NewText(v.Text()), true, true
	default:
		// Bool/Timestamp probes require the exact type, handled above.
		return value.Value{}, false, false
	}
}

// --- planning ------------------------------------------------------------------------------

// planSelect builds the physical FROM/WHERE plan. bindings and slotSource
// describe the global value-slot layout (slotSource[i] = source index of
// slot i).
func (s *Session) planSelect(st *sqlparse.SelectStmt, sources []*sourcePlan, bindings []binding, slotSource []int) *physicalPlan {
	plan := &physicalPlan{sources: sources}
	if len(sources) == 0 {
		// FROM is mandatory in the grammar; a programmatically built
		// statement with no sources yields no rows, so WHERE is moot.
		return plan
	}

	var conjuncts []analyzedConjunct
	if st.Where != nil {
		for _, e := range splitAnd(st.Where, nil) {
			ac, ok := analyzeConjunct(e, bindings, slotSource)
			if !ok {
				plan.residual = append(plan.residual, e)
				continue
			}
			conjuncts = append(conjuncts, ac)
		}
	}

	// Push single-table conjuncts into their scans.
	var multi []analyzedConjunct
	for _, ac := range conjuncts {
		if len(ac.sources) <= 1 {
			src := sources[ac.maxSrc]
			src.preds = append(src.preds, compiledPred{expr: ac.expr, slots: ac.slots})
			continue
		}
		multi = append(multi, ac)
	}

	// Choose index access paths from the pushed predicates.
	for _, src := range sources {
		s.chooseAccessPath(src)
	}

	// Estimate per-source cardinalities from the table statistics and choose
	// the join order by cost (cost.go); the syntactic order is kept unless a
	// candidate is strictly cheaper, and Session.NoReorder pins it
	// unconditionally. The chosen order's steps are compiled with their
	// prefix-side slots in the execution row layout.
	m := s.newCostModel(sources, slotSource)
	plan.srcRows = m.est
	plan.noStats = make([]bool, len(sources))
	for i := range sources {
		plan.noStats[i] = m.tstats[i] == nil
	}
	order := m.identity()
	if !s.NoReorder && len(sources) > 1 {
		order = m.chooseOrder(multi)
	}
	plan.order = order
	for i, si := range order {
		if si != i {
			plan.reordered = true
			plansReordered.Add(1)
			break
		}
	}
	plan.steps, plan.stepRows, plan.estRows = m.buildSteps(order, multi, !s.NoReorder)
	return plan
}

// chooseAccessPath picks an index probe for the source from its pushed
// predicates: the first constant equality on an indexed column wins, then an
// equality against a placeholder (resolved at execution time), otherwise
// every constant range conjunct on the first indexed range column is merged
// into one [lo, hi] probe. The chosen conjuncts stay in src.preds, so the
// probe may safely return a superset (and a deferred probe may safely fall
// back to a full scan when the bound argument cannot be converted to the
// column's key space).
func (s *Session) chooseAccessPath(src *sourcePlan) {
	var rangeCol string
	var deferredEq sqlparse.Expr
	var deferredCol string
	lo, hi := value.NewNull(), value.NewNull()
	loStrict, hiStrict := false, false

	for _, p := range src.preds {
		col, ce, op, ok := comparisonParts(p.expr)
		if !ok {
			continue
		}
		name := col.Column
		if !src.tbl.HasIndex(name) {
			continue
		}
		if containsPlaceholder(ce) {
			// The probe value is unknown until the statement is bound; only
			// equality probes are deferred (range bounds cannot be merged
			// without their values).
			if op == "=" && deferredEq == nil {
				deferredEq, deferredCol = ce, name
			}
			continue
		}
		cv, err := s.evalConst(ce, nil)
		if err != nil {
			continue
		}
		colType := src.tbl.Schema().Columns[src.tbl.Schema().ColumnIndex(name)].Type
		probe, exact, usable := indexProbeValue(colType, cv)
		if !usable {
			continue
		}
		if op == "=" {
			// Even an inexact probe (e.g. INT column against a fractional
			// constant) is safe: it yields a superset that the re-applied
			// predicate filters out.
			src.access = accessPath{kind: accessIndexEq, column: name, eq: probe}
			return
		}
		if rangeCol == "" {
			rangeCol = name
		}
		if name != rangeCol {
			continue // merge ranges on one column only
		}
		switch op {
		case ">", ">=":
			strict := op == ">" && exact
			if lo.IsNull() || tighterLow(probe, strict, lo, loStrict) {
				lo, loStrict = probe, strict
			}
		case "<", "<=":
			strict := op == "<" && exact
			if !exact {
				// Inexact upper bound: widen one key upward so no match is
				// lost (e.g. INT col < 1.2 must include col = 1).
				probe = value.NewInt(probe.Int() + 1)
			}
			if hi.IsNull() || tighterHigh(probe, strict, hi, hiStrict) {
				hi, hiStrict = probe, strict
			}
		}
	}
	if deferredEq != nil {
		src.access = accessPath{kind: accessIndexEqParam, column: deferredCol, eqExpr: deferredEq}
		return
	}
	if rangeCol != "" && (!lo.IsNull() || !hi.IsNull()) {
		src.access = accessPath{kind: accessIndexRange, column: rangeCol, lo: lo, hi: hi, loStrict: loStrict, hiStrict: hiStrict}
	}
}

// tighterLow reports whether bound (a, aStrict) is a tighter lower bound than
// (b, bStrict).
func tighterLow(a value.Value, aStrict bool, b value.Value, bStrict bool) bool {
	c, err := a.Compare(b)
	if err != nil {
		return false
	}
	return c > 0 || (c == 0 && aStrict && !bStrict)
}

func tighterHigh(a value.Value, aStrict bool, b value.Value, bStrict bool) bool {
	c, err := a.Compare(b)
	if err != nil {
		return false
	}
	return c < 0 || (c == 0 && aStrict && !bStrict)
}

func columnTypeAt(sources []*sourcePlan, slotSource []int, slot int) value.Type {
	src := sources[slotSource[slot]]
	return src.tbl.Schema().Columns[slot-src.offset].Type
}

// resolveSources builds the source plans and the global value-slot layout
// (bindings plus slot -> source mapping) for a FROM list. Both the executor
// (buildSelect) and explainSelect derive the layout from here so plan
// explanation can never diverge from plan execution.
func (s *Session) resolveSources(from []sqlparse.TableRef) ([]*sourcePlan, []binding, []int, error) {
	var sources []*sourcePlan
	var bindings []binding
	var slotSource []int
	offset := 0
	for si, ref := range from {
		tbl, err := s.Eng.Table(ref.Table)
		if err != nil {
			return nil, nil, nil, err
		}
		cols := tbl.Schema().Columns
		sources = append(sources, &sourcePlan{ref: ref, tbl: tbl, offset: offset, numCols: len(cols)})
		for i, col := range cols {
			bindings = append(bindings, binding{table: tbl.Name(), alias: ref.Alias, column: col.Name, colIdx: i})
			slotSource = append(slotSource, si)
		}
		offset += len(cols)
	}
	return sources, bindings, slotSource, nil
}

// --- execution -----------------------------------------------------------------------------

// scanRowIDs produces the source's candidate RowIDs per its access path.
// Deferred probes (accessIndexEqParam) evaluate their comparison value from
// the bound parameters; when the argument cannot be converted to the indexed
// column's key space the scan falls back to the full RowID list, which is
// always correct because the originating predicate is re-applied in the scan.
//
// Under a snapshot the index trees still reflect the CURRENT rows, so every
// probe result is widened with the rows the snapshot sees differently
// (updated or deleted since it was taken) — the probe only needs to produce
// a superset, the scan re-applies every pushed predicate per row.
func (s *Session) scanRowIDs(src *sourcePlan, params value.Row, snap *storage.Snapshot) ([]int64, error) {
	switch src.access.kind {
	case accessIndexEq:
		ids, err := src.tbl.IndexLookup(src.access.column, src.access.eq)
		if err != nil || snap == nil {
			return ids, err
		}
		return snap.AugmentRowIDs(src.tbl, ids), nil
	case accessIndexEqParam:
		v, err := s.evalConst(src.access.eqExpr, params)
		if err != nil {
			return nil, err
		}
		colType := src.tbl.Schema().Columns[src.tbl.Schema().ColumnIndex(src.access.column)].Type
		probe, _, usable := indexProbeValue(colType, v)
		if !usable {
			if snap != nil {
				return snap.RowIDs(src.tbl), nil
			}
			return src.tbl.RowIDs(), nil
		}
		ids, err := src.tbl.IndexLookup(src.access.column, probe)
		if err != nil || snap == nil {
			return ids, err
		}
		return snap.AugmentRowIDs(src.tbl, ids), nil
	case accessIndexRange:
		ids, err := src.tbl.IndexRange(src.access.column, src.access.lo, src.access.loStrict, src.access.hi, src.access.hiStrict)
		if err != nil || snap == nil {
			return ids, err
		}
		return snap.AugmentRowIDs(src.tbl, ids), nil
	default:
		if snap != nil {
			return snap.RowIDs(src.tbl), nil
		}
		return src.tbl.RowIDs(), nil
	}
}

// buildPipeline assembles the iterator tree of the planned FROM/WHERE
// pipeline (scans, joins, post-join filters and residual conjuncts). Both
// the materializing runPlan and the streaming cursor pull from it. Sources
// are scanned and joined in the plan's execution order; a reordered plan
// restores the syntactic layout and row order before the residual filter.
// orderedIDs, when non-nil, is a pre-captured index-ordered RowID list for
// the (single) source — the sort-elision path of buildSelectIter — and
// bypasses the vectorized batch scan, which only reads in RowID order.
func (s *Session) buildPipeline(ctx context.Context, plan *physicalPlan, bindings []binding, params value.Row, snap *storage.Snapshot, orderedIDs []int64) (rowIter, error) {
	first := plan.sources[plan.execOrder()[0]]
	var it rowIter
	if orderedIDs != nil {
		it = &scanIter{ctx: ctx, src: first, ids: orderedIDs, params: params, snap: snap}
	} else if bs := s.tryBatchScan(ctx, first, params, snap); bs != nil && len(plan.steps) == 0 {
		// Single-source full scan under a current snapshot: run vectorized.
		// The adapter emits the same rows (values, origins, order) the row
		// scan would, so everything downstream is oblivious.
		it = &batchRowsIter{src: bs}
	} else {
		ids, err := s.scanRowIDs(first, params, snap)
		if err != nil {
			return nil, err
		}
		it = &scanIter{ctx: ctx, src: first, ids: ids, params: params, snap: snap}
	}
	for i := range plan.steps {
		step := &plan.steps[i]
		rids, err := s.scanRowIDs(step.right, params, snap)
		if err != nil {
			return nil, err
		}
		rightRows, err := drainIter(&scanIter{ctx: ctx, src: step.right, ids: rids, params: params, snap: snap})
		if err != nil {
			return nil, err
		}
		if len(step.leftKey) > 0 {
			it = newHashJoinIter(ctx, it, rightRows, step.leftKey, step.rightKey)
		} else {
			it = &crossJoinIter{ctx: ctx, left: it, right: rightRows}
		}
		if len(step.post) > 0 {
			it = &filterIter{in: it, preds: step.post, params: params}
		}
	}
	if plan.reordered {
		it = &restoreIter{in: it, plan: plan}
	}
	if len(plan.residual) > 0 {
		// Residual conjuncts (aggregates over single rows, late resolution
		// errors) are evaluated exactly like the naive executor evaluates
		// WHERE.
		it = &residualIter{s: s, in: it, exprs: plan.residual, bindings: bindings, params: params}
	}
	return it, nil
}

// runPlan executes the pipeline and returns the surviving rows (values and
// origins only; annotations are attached later by decorateRows).
func (s *Session) runPlan(ctx context.Context, plan *physicalPlan, bindings []binding, params value.Row) ([]execRow, error) {
	if len(plan.sources) == 0 {
		return nil, nil
	}
	it, err := s.buildPipeline(ctx, plan, bindings, params, nil, nil)
	if err != nil {
		return nil, err
	}
	return drainIter(it)
}

// annSource is the per-source decoration plan: which annotation tables the
// ANNOTATION clause requested and the outdated bitmap, both resolved once
// per query instead of once per row.
type annSource struct {
	name     string
	offset   int
	numCols  int
	want     bool
	filter   annotation.Filter
	bm       *dependency.Bitmap
	colNames []string
}

// decorator attaches annotations and outdated marks to pipeline rows.
// Resolving the per-source state once at construction lets the streaming
// cursor decorate one row per Next call at the same cost per row as the
// batch path.
type decorator struct {
	s         *Session
	plans     []annSource
	totalCols int
	anyWork   bool
}

// newDecorator resolves the decoration plan of each source.
func (s *Session) newDecorator(sources []*sourcePlan) *decorator {
	d := &decorator{s: s, plans: make([]annSource, len(sources))}
	for i, src := range sources {
		d.totalCols += src.numCols
		as := annSource{
			name:    src.tbl.Name(),
			offset:  src.offset,
			numCols: src.numCols,
		}
		if len(src.ref.Annotations) > 0 {
			as.want = true
			if src.ref.Annotations[0] != "*" {
				as.filter.AnnTables = src.ref.Annotations
			}
		}
		if s.Dep != nil {
			if bm := s.Dep.Bitmap(src.tbl.Name()); bm.Any() {
				as.bm = bm
				as.colNames = src.tbl.Schema().ColumnNames()
			}
		}
		if as.want || as.bm != nil {
			d.anyWork = true
		}
		d.plans[i] = as
	}
	return d
}

// decorate attaches the requested annotations and outdated marks to one row.
func (d *decorator) decorate(r *execRow) {
	r.anns = make([][]*annotation.Annotation, d.totalCols)
	if !d.anyWork {
		return
	}
	for j := range d.plans {
		as := &d.plans[j]
		if !as.want && as.bm == nil {
			continue
		}
		rowID := r.origins[j].rowID
		if as.want {
			for c := 0; c < as.numCols; c++ {
				r.anns[as.offset+c] = d.s.Ann.ForCell(as.name, rowID, c, as.filter)
			}
		}
		if as.bm != nil && as.bm.RowOutdated(rowID) {
			for c := 0; c < as.numCols; c++ {
				if as.bm.IsSet(rowID, c) {
					r.anns[as.offset+c] = append(r.anns[as.offset+c], &annotation.Annotation{
						AnnTable:  OutdatedAnnTable,
						UserTable: as.name,
						Author:    "system:dependency-tracker",
						Body: fmt.Sprintf("<Annotation>OUTDATED: %s.%s of row %d needs re-verification</Annotation>",
							as.name, as.colNames[c], rowID),
						Regions: []annotation.Region{annotation.CellRegion(as.name, rowID, c)},
					})
				}
			}
		}
	}
}

// decorateRows attaches, per surviving row, the annotations requested by each
// source's ANNOTATION clause and the dependency manager's outdated marks.
// Doing this after the filter/join pipeline — instead of at scan time like
// the naive executor — means annotation lookups run once per result row, not
// once per scanned row. The per-table bitmap is fetched once (not per cell)
// and skipped entirely when it has no set bits.
func (s *Session) decorateRows(rows []execRow, sources []*sourcePlan) {
	if len(rows) == 0 {
		return
	}
	d := s.newDecorator(sources)
	for i := range rows {
		d.decorate(&rows[i])
	}
}
