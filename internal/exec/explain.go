package exec

// EXPLAIN rendering: a deterministic, line-per-operator description of the
// plan a statement would execute with, returned as result rows (one "plan"
// column). EXPLAIN never executes its target; for a SELECT it runs the real
// planner — the same planFor the cursor layer uses, so the explanation can
// never diverge from execution — and renders the join pipeline in execution
// order with the cost model's row estimates, then the post-join stages.
//
// The rendering is byte-stable for a fixed database state; the goldens under
// testdata/explain pin it. Two dynamic decisions are rendered statically:
// sort elision shows the intent (the executor still falls back to a real
// sort when the snapshot check fails at run time), and the Top-N choice uses
// the same estimate the cursor uses.

import (
	"context"
	"fmt"
	"math"
	"strings"

	"bdbms/internal/sqlparse"
	"bdbms/internal/value"
)

// execExplain renders the plan of the target statement as result rows. It
// routes through the read-only statement path, so EXPLAIN behaves
// identically for bare statements, inside transactions, prepared, over the
// wire and in the CLI.
func (s *Session) execExplain(_ context.Context, st *sqlparse.ExplainStmt, _ value.Row) (*Result, error) {
	text, err := s.explainStmt(st.Target)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: []string{"plan"}}
	for _, line := range strings.Split(text, "\n") {
		res.Rows = append(res.Rows, ARow{Values: value.Row{value.NewText(line)}})
	}
	return res, nil
}

// explainStmt renders the plan of one statement as newline-joined lines.
func (s *Session) explainStmt(stmt sqlparse.Statement) (string, error) {
	switch st := stmt.(type) {
	case *sqlparse.SelectStmt:
		return s.explainSelect(st)
	case *sqlparse.UpdateStmt:
		return s.explainMutation("Update", st.Table, st.Where)
	case *sqlparse.DeleteStmt:
		return s.explainMutation("Delete", st.Table, st.Where)
	case *sqlparse.InsertStmt:
		return fmt.Sprintf("Insert(%s) rows=%d", st.Table, len(st.Rows)), nil
	case *sqlparse.ExplainStmt:
		return s.explainStmt(st.Target)
	default:
		return "Execute(" + stmtName(stmt) + ")", nil
	}
}

// explainSelect renders the physical plan of a SELECT. The plan-shape tests
// and the EXPLAIN goldens both consume this rendering.
func (s *Session) explainSelect(sel *sqlparse.SelectStmt) (string, error) {
	lines, err := s.explainSelectLines(sel)
	if err != nil {
		return "", err
	}
	return strings.Join(lines, "\n"), nil
}

func (s *Session) explainSelectLines(sel *sqlparse.SelectStmt) ([]string, error) {
	plan, err := s.planFor(sel)
	if err != nil {
		return nil, err
	}
	proj := newProjector(s, plan.items, plan.bindings, nil)
	outputOnly := sel.Distinct || sel.SetOp != sqlparse.SetNone
	var orderKeys []orderKey
	if len(sel.OrderBy) > 0 {
		orderKeys, err = buildOrderPlan(sel.OrderBy, proj.cols, plan.bindings, outputOnly)
		if err != nil {
			return nil, err
		}
	}
	phys := plan.phys
	var lines []string
	for i, si := range phys.execOrder() {
		src := phys.sources[si]
		if i == 0 {
			lines = append(lines, fmt.Sprintf("%s%s rows~%d%s",
				scanDesc(src), filterMark(len(src.preds) > 0), roundRows(phys.srcRows[si]), noStatsMark(phys, si)))
			continue
		}
		step := phys.steps[i-1]
		op := "NestedLoop"
		if len(step.leftKey) > 0 {
			op = "HashJoin"
		}
		lines = append(lines, fmt.Sprintf("%s(%s%s)%s rows~%d%s",
			op, src.tbl.Name(), describeScan(src), filterMark(len(step.post) > 0),
			roundRows(phys.stepRows[i-1]), noStatsMark(phys, si)))
	}
	if phys.reordered {
		lines = append(lines, "Restore(syntactic order)")
	}
	if len(phys.residual) > 0 {
		lines = append(lines, "Residual")
	}
	if sel.AWhere != nil {
		lines = append(lines, "AWhere")
	}
	if len(sel.GroupBy) > 0 || hasAggregate(sel.Items) || sel.Having != nil {
		lines = append(lines, "Aggregate")
		if sel.Having != nil {
			lines = append(lines, "Having")
		}
	}
	if sel.AHaving != nil {
		lines = append(lines, "AHaving")
	}
	if sel.Filter != nil {
		lines = append(lines, "AnnFilter")
	}
	lines = append(lines, "Project("+strings.Join(proj.cols, ", ")+")")
	if sel.Distinct {
		lines = append(lines, "Distinct")
	}
	if sel.SetOp != sqlparse.SetNone {
		opName := "Except"
		switch sel.SetOp {
		case sqlparse.SetUnion:
			opName = "Union"
		case sqlparse.SetIntersect:
			opName = "Intersect"
		}
		lines = append(lines, opName+":")
		sub, err := s.explainSelectLines(sel.SetRight)
		if err != nil {
			return nil, err
		}
		for _, l := range sub {
			lines = append(lines, "  "+l)
		}
	}
	if len(orderKeys) > 0 {
		col, elide := "", false
		if !outputOnly {
			col, elide = sortElisionColumn(sel, phys, proj, orderKeys)
		}
		switch {
		case elide:
			lines = append(lines, fmt.Sprintf("IndexOrder(%s.%s) (sort elided)",
				phys.sources[0].tbl.Name(), col))
		case topNWins(sel.Limit, phys):
			lines = append(lines, fmt.Sprintf("TopN(%d: %s)", sel.Limit, orderByDesc(sel.OrderBy)))
		default:
			lines = append(lines, "Sort("+orderByDesc(sel.OrderBy)+")")
		}
	}
	if sel.Limit >= 0 {
		lines = append(lines, fmt.Sprintf("Limit(%d)", sel.Limit))
	}
	return lines, nil
}

// explainMutation renders the access path an UPDATE or DELETE would use to
// find its matching rows — the same chooser probeMatchingRows feeds, so the
// explanation shows whether the mutation probes an index or scans the heap.
func (s *Session) explainMutation(verb, table string, where sqlparse.Expr) (string, error) {
	tbl, err := s.Eng.Table(table)
	if err != nil {
		return "", err
	}
	schema := tbl.Schema()
	src := &sourcePlan{tbl: tbl, numCols: len(schema.Columns)}
	if where != nil {
		for _, e := range splitAnd(where, nil) {
			resolved := true
			pure := walkColumns(e, func(col *sqlparse.ColumnExpr) {
				if col.Table != "" && !strings.EqualFold(col.Table, tbl.Name()) {
					resolved = false
					return
				}
				if schema.ColumnIndex(col.Column) < 0 {
					resolved = false
				}
			})
			if pure && resolved {
				src.preds = append(src.preds, compiledPred{expr: e})
			}
		}
	}
	s.chooseAccessPath(src)
	st := s.tableStats(tbl)
	rows := float64(tbl.RowCount())
	mark := " [no stats]"
	if st != nil {
		m := s.newCostModel([]*sourcePlan{src}, nil)
		rows = m.est[0]
		mark = ""
	}
	return fmt.Sprintf("%s(%s)\n  via %s%s rows~%d%s",
		verb, tbl.Name(), scanDesc(src), filterMark(len(src.preds) > 0), roundRows(rows), mark), nil
}

func filterMark(filtered bool) string {
	if filtered {
		return " filter"
	}
	return ""
}

func noStatsMark(p *physicalPlan, si int) string {
	if si < len(p.noStats) && p.noStats[si] {
		return " [no stats]"
	}
	return ""
}

func roundRows(f float64) int64 {
	return int64(math.Round(f))
}

// orderByDesc renders an ORDER BY list, e.g. "Score DESC, GName".
func orderByDesc(items []sqlparse.OrderItem) string {
	parts := make([]string, 0, len(items))
	for _, o := range items {
		name := "?"
		if ce, ok := o.Expr.(*sqlparse.ColumnExpr); ok {
			name = ce.Column
			if ce.Table != "" {
				name = ce.Table + "." + name
			}
		}
		if o.Desc {
			name += " DESC"
		}
		parts = append(parts, name)
	}
	return strings.Join(parts, ", ")
}

// stmtName names a non-plannable statement for the generic EXPLAIN line.
func stmtName(stmt sqlparse.Statement) string {
	switch stmt.(type) {
	case *sqlparse.CreateTableStmt:
		return "CREATE TABLE"
	case *sqlparse.CreateIndexStmt:
		return "CREATE INDEX"
	case *sqlparse.DropTableStmt:
		return "DROP TABLE"
	case *sqlparse.CreateAnnotationTableStmt:
		return "CREATE ANNOTATION TABLE"
	case *sqlparse.DropAnnotationTableStmt:
		return "DROP ANNOTATION TABLE"
	case *sqlparse.AddAnnotationStmt:
		return "ADD ANNOTATION"
	case *sqlparse.ArchiveAnnotationStmt:
		return "ARCHIVE/RESTORE ANNOTATION"
	case *sqlparse.StartContentApprovalStmt:
		return "START CONTENT APPROVAL"
	case *sqlparse.StopContentApprovalStmt:
		return "STOP CONTENT APPROVAL"
	case *sqlparse.GrantStmt:
		return "GRANT/REVOKE"
	case *sqlparse.ApproveStmt:
		return "APPROVE"
	case *sqlparse.ShowPendingStmt:
		return "SHOW PENDING"
	case *sqlparse.BeginStmt:
		return "BEGIN"
	case *sqlparse.CommitStmt:
		return "COMMIT"
	case *sqlparse.RollbackStmt:
		return "ROLLBACK"
	case *sqlparse.SavepointStmt:
		return "SAVEPOINT"
	default:
		return "statement"
	}
}
