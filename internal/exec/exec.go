// Package exec executes parsed A-SQL statements against the bdbms managers:
// the storage engine, the annotation manager (propagation semantics of
// Section 3.4), the provenance manager, the dependency manager (outdated
// marks attached to query answers, Section 5) and the authorization manager
// (GRANT/REVOKE checks and content-based approval, Section 6).
//
// # SELECT pipeline
//
// SELECT evaluation is split between a planner and a streaming executor:
//
//	parse -> plan (planner.go) -> iterate (iterator.go) -> decorate
//	  -> group/aggregate (group.go) -> project (select.go)
//	  -> distinct/set ops (setop.go) -> sort / top-N (sort.go)
//
// The planner decomposes WHERE into AND-conjuncts and places each one as
// low in the pipeline as possible: single-table conjuncts run inside the
// table scan, constant comparisons on indexed columns become B+-tree probes
// (storage.Table.IndexLookup / IndexRange), and two-table equality
// conjuncts become the keys of hash equi-joins. Sources with no connecting
// equality fall back to a block nested-loop join; conjuncts the planner
// cannot place (aggregates, late-resolving references) are evaluated
// residually, exactly as the naive executor would.
//
// The executor is a tree of Volcano-style pull iterators, so a join never
// materializes the cross product of its inputs. Rows carry only values and
// (table, RowID) origins while streaming; annotations and dependency
// outdated marks are decorated onto the survivors afterwards, which makes
// annotation propagation pay-per-result-row instead of pay-per-scanned-row.
// Blocking operators — grouped aggregation, DISTINCT, set operations,
// ORDER BY — hold only budget-bounded resident state (Session.SpillBudget)
// and spill to temp files past it (spill.go); ORDER BY + LIMIT runs as a
// Top-N heap with O(LIMIT) result memory.
//
// Session.NoOptimize bypasses all of this and runs the reference
// materialize-then-filter implementation; the plan-equivalence tests assert
// both paths return identical rows, ordering and annotations.
//
// # Transactions
//
// Session.Begin (and the BEGIN/COMMIT/ROLLBACK/SAVEPOINT statements) group
// statements into ACID transactions; bare mutating statements auto-commit
// inside an implicit transaction so a mid-statement failure rolls back
// cleanly. See tx.go for the protocol: strict two-phase locking over
// per-table latches for writer-writer isolation (writers remain
// serializable), MVCC snapshots for latch-free SELECT cursors (readers get
// snapshot isolation — see internal/storage/mvcc.go), an in-memory undo log
// of before-images for rollback, and TxBegin/TxCommit WAL framing for crash
// atomicity, with commits sharing fsyncs when commit-time durability is on
// (wal.Log.SyncCommitted).
package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"bdbms/internal/annotation"
	"bdbms/internal/authz"
	"bdbms/internal/catalog"
	"bdbms/internal/dependency"
	"bdbms/internal/provenance"
	"bdbms/internal/sqlparse"
	"bdbms/internal/storage"
	"bdbms/internal/value"
)

// Errors returned by the executor.
var (
	// ErrUnsupported is returned for statements the executor cannot run.
	ErrUnsupported = errors.New("exec: unsupported statement")
	// ErrUnknownColumn is returned when an expression references an unknown column.
	ErrUnknownColumn = errors.New("exec: unknown column")
	// ErrAmbiguousColumn is returned when an unqualified column matches several tables.
	ErrAmbiguousColumn = errors.New("exec: ambiguous column")
	// ErrBadArgs is returned when a statement's `?` placeholders and the
	// supplied arguments do not line up (count mismatch, unsupported Go type,
	// or a placeholder evaluated without a binding).
	ErrBadArgs = errors.New("exec: bad statement arguments")
)

// OutdatedAnnTable is the synthetic annotation table name used when the
// dependency manager flags a propagated cell as outdated.
const OutdatedAnnTable = "Outdated"

// Session executes statements on behalf of one user. Concurrency control
// lives in the engine the session points at: SELECT cursors read MVCC
// snapshots and take no locks, everything that mutates state (DML, DDL,
// annotation and approval commands) runs under the per-table write latches
// of Eng.Locks() — writers touching disjoint tables proceed in parallel up
// to the shared WAL frame, writers on the same table serialize.
//
// A Session without an open transaction may be shared by several
// goroutines. Once Begin (or a BEGIN statement) opens a transaction the
// session's statements route through it and must come from one goroutine at
// a time until Commit/Rollback — the transaction holds its accumulated
// latches for its whole lifetime, and its uncommitted writes stay invisible
// to snapshot readers until COMMIT.
type Session struct {
	// Eng is the storage engine.
	Eng *storage.Engine
	// Ann is the annotation manager.
	Ann *annotation.Manager
	// Prov is the provenance manager (may be nil).
	Prov *provenance.Manager
	// Dep is the dependency manager (may be nil).
	Dep *dependency.Manager
	// Auth is the authorization manager (may be nil).
	Auth *authz.Manager
	// User is the identity running the statements.
	User string
	// EnforceAuth enables GRANT/REVOKE privilege checks on every statement.
	EnforceAuth bool
	// NoOptimize forces SELECT onto the naive materialize-then-filter
	// executor instead of the planned iterator pipeline. The naive path is
	// the semantic reference: the plan-equivalence tests and the baseline
	// benchmarks run with NoOptimize set.
	NoOptimize bool
	// NoVectorize keeps planned SELECTs on the row-at-a-time scan instead of
	// the vectorized batch path (batch.go). The two paths must be
	// indistinguishable result-wise; the execution fuzzer runs every query
	// both ways to prove it.
	NoVectorize bool
	// NoReorder pins the join order to the syntactic FROM order and disables
	// the other cost-based join choice (nested loop when cheaper than a hash
	// build), so every keyed join stays a hash join. Result-wise the two
	// modes must be indistinguishable; the plan-shape tests set it to assert
	// the syntactic pipeline, and the join-order fuzzer compares both modes.
	NoReorder bool
	// NoStats makes the planner ignore table statistics and fall back to raw
	// row counts with default selectivities — the deterministic way to
	// exercise (and EXPLAIN) the stats-missing fallback.
	NoStats bool
	// SpillBudget bounds, in bytes, the resident working set of each
	// blocking operator in the streaming pipeline (grouped aggregation,
	// DISTINCT, UNION, external sort): past the budget the operator spills
	// its state to a temp file and finishes with a streaming merge. Zero
	// selects the default (8 MiB per operator). INTERSECT/EXCEPT hold one
	// in-memory entry per distinct right-operand row regardless of budget.
	SpillBudget int

	// OnTxBegin / OnTxEnd, when both set (core wires them into every
	// session), observe transaction lifecycle: Begin reports the new Tx
	// before it is handed out, and every Commit/Rollback (watcher
	// auto-rollback included) reports the end. The embedding database uses
	// the pair to track open transactions so Close can roll back a leaked
	// one instead of deadlocking on the lock it holds.
	OnTxBegin func(*Tx)
	OnTxEnd   func(*Tx)

	// txMu guards tx, the session's open explicit transaction (nil outside
	// BEGIN..COMMIT).
	txMu sync.Mutex
	tx   *Tx
}

// readOnlyStmt reports whether the statement only reads database state and
// therefore needs no write latches or WAL frame.
func readOnlyStmt(stmt sqlparse.Statement) bool {
	switch stmt.(type) {
	case *sqlparse.SelectStmt, *sqlparse.ShowPendingStmt, *sqlparse.ExplainStmt:
		return true
	default:
		return false
	}
}

// ARow is one result row: values plus, per output column, the annotations
// propagated to that cell.
type ARow struct {
	Values value.Row
	Anns   [][]*annotation.Annotation
}

// AnnotationsFlat returns every distinct annotation attached to the row.
func (r ARow) AnnotationsFlat() []*annotation.Annotation {
	seen := map[int64]bool{}
	var out []*annotation.Annotation
	for _, cell := range r.Anns {
		for _, a := range cell {
			// Synthetic annotations (e.g. outdated marks) have ID 0 and are
			// kept individually; stored annotations are deduplicated by ID.
			if a.ID != 0 {
				if seen[a.ID] {
					continue
				}
				seen[a.ID] = true
			}
			out = append(out, a)
		}
	}
	return out
}

// Result is the outcome of executing one statement.
type Result struct {
	// Columns are the output column names (empty for DDL/DML).
	Columns []string
	// Rows are the result rows (empty for DDL/DML).
	Rows []ARow
	// Affected is the number of rows affected by DML.
	Affected int
	// Message summarises DDL/utility statements.
	Message string
}

// Exec parses and executes a single A-SQL statement, materializing the full
// result. It is a compatibility wrapper that drains a Query cursor; use
// Query to stream large results and bind `?` placeholders.
func (s *Session) Exec(sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.drainStmt(stmt)
}

// ExecAll parses and executes a semicolon-separated script, returning the
// result of each statement.
func (s *Session) ExecAll(sql string) ([]*Result, error) {
	stmts, err := sqlparse.ParseAll(sql)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(stmts))
	for _, stmt := range stmts {
		res, err := s.drainStmt(stmt)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// drainStmt executes a parsed statement through the cursor layer and drains
// it into a materialized Result.
func (s *Session) drainStmt(stmt sqlparse.Statement) (*Result, error) {
	rows, err := s.queryStmt(context.Background(), stmt, nil, nil)
	if err != nil {
		return nil, err
	}
	return rows.materialize()
}

// ExecStmt executes a parsed statement (taking the session lock when one is
// wired) and materializes the full result.
func (s *Session) ExecStmt(stmt sqlparse.Statement) (*Result, error) {
	return s.drainStmt(stmt)
}

// execStmt dispatches a parsed statement. The caller must already hold the
// appropriate session lock; params carry the bound placeholder arguments
// (nil when the statement has none).
func (s *Session) execStmt(ctx context.Context, stmt sqlparse.Statement, params value.Row) (*Result, error) {
	switch st := stmt.(type) {
	case *sqlparse.SelectStmt:
		return s.execSelect(ctx, st, params)
	case *sqlparse.InsertStmt:
		return s.execInsert(ctx, st, params)
	case *sqlparse.UpdateStmt:
		return s.execUpdate(ctx, st, params)
	case *sqlparse.DeleteStmt:
		return s.execDelete(ctx, st, params)
	case *sqlparse.CreateTableStmt:
		return s.execCreateTable(st)
	case *sqlparse.DropTableStmt:
		return s.execDropTable(st)
	case *sqlparse.CreateIndexStmt:
		return s.execCreateIndex(st)
	case *sqlparse.CreateAnnotationTableStmt:
		return s.execCreateAnnotationTable(st)
	case *sqlparse.DropAnnotationTableStmt:
		return s.execDropAnnotationTable(st)
	case *sqlparse.AddAnnotationStmt:
		return s.execAddAnnotation(ctx, st, params)
	case *sqlparse.ArchiveAnnotationStmt:
		return s.execArchiveRestore(ctx, st, params)
	case *sqlparse.StartContentApprovalStmt:
		return s.execStartApproval(st)
	case *sqlparse.StopContentApprovalStmt:
		return s.execStopApproval(st)
	case *sqlparse.GrantStmt:
		return s.execGrantRevoke(st)
	case *sqlparse.ApproveStmt:
		return s.execApprove(st)
	case *sqlparse.ShowPendingStmt:
		return s.execShowPending(st)
	case *sqlparse.ExplainStmt:
		return s.execExplain(ctx, st, params)
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnsupported, stmt)
	}
}

func (s *Session) require(table string, priv authz.Privilege) error {
	if !s.EnforceAuth || s.Auth == nil {
		return nil
	}
	return s.Auth.Require(s.User, table, priv)
}

// --- DDL ---------------------------------------------------------------------------

func (s *Session) execCreateTable(st *sqlparse.CreateTableStmt) (*Result, error) {
	schema := &catalog.Schema{Name: st.Table}
	for _, col := range st.Columns {
		schema.Columns = append(schema.Columns, catalog.Column{
			Name: col.Name, Type: col.Type, NotNull: col.NotNull,
		})
		if col.PrimaryKey {
			schema.PrimaryKey = col.Name
		}
	}
	if _, err := s.Eng.CreateTable(schema); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("table %s created", st.Table)}, nil
}

func (s *Session) execDropTable(st *sqlparse.DropTableStmt) (*Result, error) {
	if err := s.Eng.DropTable(st.Table); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("table %s dropped", st.Table)}, nil
}

func (s *Session) execCreateIndex(st *sqlparse.CreateIndexStmt) (*Result, error) {
	tbl, err := s.Eng.Table(st.Table)
	if err != nil {
		return nil, err
	}
	if err := tbl.CreateIndex(st.Column); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("index on %s(%s) created", st.Table, st.Column)}, nil
}

func (s *Session) execCreateAnnotationTable(st *sqlparse.CreateAnnotationTableStmt) (*Result, error) {
	if err := s.Ann.CreateAnnotationTable(st.UserTable, st.Name, st.Category, false); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("annotation table %s created on %s", st.Name, st.UserTable)}, nil
}

func (s *Session) execDropAnnotationTable(st *sqlparse.DropAnnotationTableStmt) (*Result, error) {
	if err := s.Ann.DropAnnotationTable(st.UserTable, st.Name); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("annotation table %s dropped from %s", st.Name, st.UserTable)}, nil
}

// --- DML ---------------------------------------------------------------------------

// DML cancellation contract: the context is honored while matching rows
// (the long read phase) AND between row writes. Every statement runs inside
// a transaction (the session's explicit one, or the implicit auto-commit
// transaction the cursor layer wraps around it), so an abort mid-write no
// longer strands a partial update — the undo log rolls the statement's
// applied rows back before the error is returned.
func (s *Session) execInsert(ctx context.Context, st *sqlparse.InsertStmt, params value.Row) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.require(st.Table, authz.PrivInsert); err != nil {
		return nil, err
	}
	tbl, err := s.Eng.Table(st.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	affected := 0
	for _, exprRow := range st.Rows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := make(value.Row, len(schema.Columns))
		for i := range row {
			row[i] = value.NewNull()
		}
		if len(st.Columns) == 0 {
			if len(exprRow) != len(schema.Columns) {
				return nil, fmt.Errorf("%w: INSERT expects %d values, got %d",
					catalog.ErrSchemaMismatch, len(schema.Columns), len(exprRow))
			}
			for i, e := range exprRow {
				v, err := s.evalConst(e, params)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
		} else {
			if len(exprRow) != len(st.Columns) {
				return nil, fmt.Errorf("%w: INSERT column/value count mismatch", catalog.ErrSchemaMismatch)
			}
			for i, colName := range st.Columns {
				idx := schema.ColumnIndex(colName)
				if idx < 0 {
					return nil, fmt.Errorf("%w: %s.%s", catalog.ErrColumnNotFound, st.Table, colName)
				}
				v, err := s.evalConst(exprRow[i], params)
				if err != nil {
					return nil, err
				}
				row[idx] = v
			}
		}
		rowID, err := tbl.Insert(row)
		if err != nil {
			return nil, err
		}
		affected++
		s.afterWrite(authz.OpInsert, tbl, rowID, nil, row, schema.ColumnNames())
	}
	return &Result{Affected: affected, Message: fmt.Sprintf("%d row(s) inserted", affected)}, nil
}

func (s *Session) execUpdate(ctx context.Context, st *sqlparse.UpdateStmt, params value.Row) (*Result, error) {
	if err := s.require(st.Table, authz.PrivUpdate); err != nil {
		return nil, err
	}
	tbl, err := s.Eng.Table(st.Table)
	if err != nil {
		return nil, err
	}
	rows, err := s.matchingRows(ctx, tbl, st.Where, params)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	affected := 0
	for _, rowID := range rows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		oldRow, err := tbl.Get(rowID)
		if err != nil {
			return nil, err
		}
		newRow := oldRow.Clone()
		var changedCols []string
		for _, set := range st.Set {
			idx := schema.ColumnIndex(set.Column)
			if idx < 0 {
				return nil, fmt.Errorf("%w: %s.%s", catalog.ErrColumnNotFound, st.Table, set.Column)
			}
			v, err := s.evalRowExpr(set.Value, tbl, rowID, oldRow, params)
			if err != nil {
				return nil, err
			}
			newRow[idx] = v
			changedCols = append(changedCols, set.Column)
		}
		if err := tbl.Update(rowID, newRow); err != nil {
			return nil, err
		}
		affected++
		s.afterWrite(authz.OpUpdate, tbl, rowID, oldRow, newRow, changedCols)
	}
	return &Result{Affected: affected, Message: fmt.Sprintf("%d row(s) updated", affected)}, nil
}

func (s *Session) execDelete(ctx context.Context, st *sqlparse.DeleteStmt, params value.Row) (*Result, error) {
	if err := s.require(st.Table, authz.PrivDelete); err != nil {
		return nil, err
	}
	tbl, err := s.Eng.Table(st.Table)
	if err != nil {
		return nil, err
	}
	rows, err := s.matchingRows(ctx, tbl, st.Where, params)
	if err != nil {
		return nil, err
	}
	affected := 0
	for _, rowID := range rows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		oldRow, err := tbl.Get(rowID)
		if err != nil {
			return nil, err
		}
		if err := tbl.Delete(rowID); err != nil {
			return nil, err
		}
		affected++
		s.afterWrite(authz.OpDelete, tbl, rowID, oldRow, nil, tbl.Schema().ColumnNames())
	}
	return &Result{Affected: affected, Message: fmt.Sprintf("%d row(s) deleted", affected)}, nil
}

// afterWrite runs the cross-cutting concerns of a completed write: the
// content-approval log and the dependency cascade.
func (s *Session) afterWrite(kind authz.OpKind, tbl *storage.Table, rowID int64, oldRow, newRow value.Row, changedCols []string) {
	if s.Auth != nil && s.Auth.Monitored(tbl.Name(), changedCols...) {
		_, _ = s.Auth.RecordOperation(s.User, kind, tbl.Name(), rowID, oldRow, newRow)
	}
	if s.Dep != nil && kind != authz.OpDelete {
		for _, col := range changedCols {
			_, _ = s.Dep.OnCellModified(tbl.Name(), rowID, col)
		}
	}
}

// matchingRows returns the RowIDs of tbl satisfying where (all rows when
// nil). When the WHERE clause contains an equality or range conjunct on an
// indexed column it probes the index through the same access paths the SELECT
// planner uses — a point UPDATE/DELETE then touches a handful of rows instead
// of scanning the table, which matters doubly for mutations because their read
// phase runs under the table's write latch. The full scan — still a DML
// statement's long read phase — honors context cancellation, checked
// periodically.
func (s *Session) matchingRows(ctx context.Context, tbl *storage.Table, where sqlparse.Expr, params value.Row) ([]int64, error) {
	if out, ok, err := s.probeMatchingRows(ctx, tbl, where, params); ok || err != nil {
		return out, err
	}
	var out []int64
	var evalErr error
	scanned := 0
	scanErr := tbl.Scan(func(rowID int64, row value.Row) bool {
		if scanned&1023 == 0 {
			if err := ctx.Err(); err != nil {
				evalErr = err
				return false
			}
		}
		scanned++
		if where == nil {
			out = append(out, rowID)
			return true
		}
		v, err := s.evalRowExpr(where, tbl, rowID, row, params)
		if err != nil {
			evalErr = err
			return false
		}
		if v.Type() == value.Bool && v.Bool() {
			out = append(out, rowID)
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// probeMatchingRows is the index-probe fast path of matchingRows. It feeds
// the WHERE conjuncts that resolve entirely against tbl to the SELECT
// planner's access-path chooser and, when that yields an index probe, fetches
// the candidate RowIDs from the index and re-evaluates the full predicate per
// candidate — the probe only has to produce a superset. ok is false when no
// probe applies and the caller must fall back to the heap scan. Mutations
// read the current table state under its write latch, so no snapshot
// augmentation is involved.
func (s *Session) probeMatchingRows(ctx context.Context, tbl *storage.Table, where sqlparse.Expr, params value.Row) (ids []int64, ok bool, err error) {
	if where == nil {
		return nil, false, nil
	}
	schema := tbl.Schema()
	src := &sourcePlan{tbl: tbl}
	for _, e := range splitAnd(where, nil) {
		resolved := true
		pure := walkColumns(e, func(col *sqlparse.ColumnExpr) {
			if col.Table != "" && !strings.EqualFold(col.Table, tbl.Name()) {
				resolved = false
				return
			}
			if schema.ColumnIndex(col.Column) < 0 {
				resolved = false
			}
		})
		if pure && resolved {
			src.preds = append(src.preds, compiledPred{expr: e})
		}
	}
	s.chooseAccessPath(src)
	if src.access.kind == accessFullScan {
		return nil, false, nil
	}
	cands, err := s.scanRowIDs(src, params, nil)
	if err != nil {
		return nil, false, err
	}
	out := make([]int64, 0, len(cands))
	for i, rowID := range cands {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, false, err
			}
		}
		row, err := tbl.Get(rowID)
		if err != nil {
			if errors.Is(err, storage.ErrRowNotFound) {
				continue
			}
			return nil, false, err
		}
		v, err := s.evalRowExpr(where, tbl, rowID, row, params)
		if err != nil {
			return nil, false, err
		}
		if v.Type() == value.Bool && v.Bool() {
			out = append(out, rowID)
		}
	}
	return out, true, nil
}

// evalConst evaluates an expression with no row context (literals,
// arithmetic over literals, and bound placeholders).
func (s *Session) evalConst(e sqlparse.Expr, params value.Row) (value.Value, error) {
	return evalExpr(e, func(col *sqlparse.ColumnExpr) (value.Value, error) {
		return value.Value{}, fmt.Errorf("%w: %s in constant context", ErrUnknownColumn, col.Column)
	}, nil, params)
}

// evalRowExpr evaluates an expression against a single table row.
func (s *Session) evalRowExpr(e sqlparse.Expr, tbl *storage.Table, rowID int64, row value.Row, params value.Row) (value.Value, error) {
	schema := tbl.Schema()
	return evalExpr(e, func(col *sqlparse.ColumnExpr) (value.Value, error) {
		if col.Table != "" && !strings.EqualFold(col.Table, tbl.Name()) && !strings.EqualFold(col.Table, "ANN") {
			return value.Value{}, fmt.Errorf("%w: %s.%s", ErrUnknownColumn, col.Table, col.Column)
		}
		idx := schema.ColumnIndex(col.Column)
		if idx < 0 {
			return value.Value{}, fmt.Errorf("%w: %s", ErrUnknownColumn, col.Column)
		}
		return row[idx], nil
	}, nil, params)
}

// --- annotation commands --------------------------------------------------------------

// selectRegions runs the ON (SELECT ...) of an annotation command and
// translates its output into storage regions of the target user table.
func (s *Session) selectRegions(ctx context.Context, sel *sqlparse.SelectStmt, userTable string, params value.Row) ([]annotation.Region, error) {
	plan, err := s.buildSelect(ctx, sel, params)
	if err != nil {
		return nil, err
	}
	tbl, err := s.Eng.Table(userTable)
	if err != nil {
		return nil, err
	}
	numCols := len(tbl.Schema().Columns)

	// Collect the RowIDs contributed by the target table and the ordinals of
	// the projected columns that belong to it.
	rowIDs := map[int64]bool{}
	for _, r := range plan.rows {
		for _, o := range r.origins {
			if strings.EqualFold(o.table, userTable) {
				rowIDs[o.rowID] = true
			}
		}
	}
	var ids []int64
	for id := range rowIDs {
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, nil
	}
	colOrdinals := map[int]bool{}
	star := false
	for _, item := range plan.items {
		if item.star {
			star = true
			continue
		}
		if item.sourceTable != "" && strings.EqualFold(item.sourceTable, userTable) && item.sourceCol >= 0 {
			colOrdinals[item.sourceCol] = true
		}
	}
	var regions []annotation.Region
	if star || len(colOrdinals) == 0 {
		regions = annotation.RegionsForRows(tbl.Name(), ids, 0, numCols-1)
	} else {
		for ord := range colOrdinals {
			regions = append(regions, annotation.RegionsForRows(tbl.Name(), ids, ord, ord)...)
		}
	}
	return regions, nil
}

func (s *Session) execAddAnnotation(ctx context.Context, st *sqlparse.AddAnnotationStmt, params value.Row) (*Result, error) {
	total := 0
	for _, target := range st.Targets {
		regions, err := s.selectRegions(ctx, st.On, target.UserTable, params)
		if err != nil {
			return nil, err
		}
		if len(regions) == 0 {
			continue
		}
		if _, err := s.Ann.Add(target.UserTable, target.AnnTable, st.Body, s.User, regions); err != nil {
			return nil, err
		}
		total++
	}
	return &Result{Affected: total, Message: fmt.Sprintf("annotation added to %d table(s)", total)}, nil
}

func parseTimeBound(text string) (time.Time, error) {
	if text == "" {
		return time.Time{}, nil
	}
	for _, layout := range []string{time.RFC3339Nano, time.RFC3339, "2006-01-02 15:04:05", "2006-01-02"} {
		if t, err := time.Parse(layout, text); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("exec: bad timestamp %q", text)
}

func (s *Session) execArchiveRestore(ctx context.Context, st *sqlparse.ArchiveAnnotationStmt, params value.Row) (*Result, error) {
	from, err := parseTimeBound(st.From)
	if err != nil {
		return nil, err
	}
	to, err := parseTimeBound(st.To)
	if err != nil {
		return nil, err
	}
	tr := annotation.TimeRange{From: from, To: to}
	total := 0
	for _, target := range st.Targets {
		regions, err := s.selectRegions(ctx, st.On, target.UserTable, params)
		if err != nil {
			return nil, err
		}
		var n int
		if st.Restore {
			n, err = s.Ann.Restore(target.UserTable, []string{target.AnnTable}, tr, regions)
		} else {
			n, err = s.Ann.Archive(target.UserTable, []string{target.AnnTable}, tr, regions)
		}
		if err != nil {
			return nil, err
		}
		total += n
	}
	verb := "archived"
	if st.Restore {
		verb = "restored"
	}
	return &Result{Affected: total, Message: fmt.Sprintf("%d annotation(s) %s", total, verb)}, nil
}

// --- authorization commands --------------------------------------------------------------

func (s *Session) execStartApproval(st *sqlparse.StartContentApprovalStmt) (*Result, error) {
	if s.Auth == nil {
		return nil, fmt.Errorf("%w: no authorization manager", ErrUnsupported)
	}
	if err := s.Auth.StartContentApproval(st.Table, st.Columns, st.Approver); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("content approval started on %s (approver %s)", st.Table, st.Approver)}, nil
}

func (s *Session) execStopApproval(st *sqlparse.StopContentApprovalStmt) (*Result, error) {
	if s.Auth == nil {
		return nil, fmt.Errorf("%w: no authorization manager", ErrUnsupported)
	}
	if err := s.Auth.StopContentApproval(st.Table, st.Columns); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("content approval stopped on %s", st.Table)}, nil
}

func (s *Session) execGrantRevoke(st *sqlparse.GrantStmt) (*Result, error) {
	if s.Auth == nil {
		return nil, fmt.Errorf("%w: no authorization manager", ErrUnsupported)
	}
	var privs []authz.Privilege
	for _, p := range st.Privileges {
		privs = append(privs, authz.Privilege(strings.ToUpper(p)))
	}
	if st.Revoke {
		s.Auth.Revoke(st.Principal, st.Table, privs...)
		return &Result{Message: fmt.Sprintf("revoked %s on %s from %s", strings.Join(st.Privileges, ","), st.Table, st.Principal)}, nil
	}
	s.Auth.Grant(st.Principal, st.Table, privs...)
	return &Result{Message: fmt.Sprintf("granted %s on %s to %s", strings.Join(st.Privileges, ","), st.Table, st.Principal)}, nil
}

func (s *Session) execApprove(st *sqlparse.ApproveStmt) (*Result, error) {
	if s.Auth == nil {
		return nil, fmt.Errorf("%w: no authorization manager", ErrUnsupported)
	}
	if st.Disapprove {
		affected, err := s.Auth.Disapprove(st.OpID, s.User)
		if err != nil {
			return nil, err
		}
		// Disapproval rolled data back: re-run the dependency cascade over the
		// restored rows so downstream values are re-marked.
		if s.Dep != nil {
			if op, err := s.Auth.Operation(st.OpID); err == nil {
				if tbl, err := s.Eng.Table(op.Table); err == nil {
					for _, rowID := range affected {
						for _, col := range tbl.Schema().ColumnNames() {
							_, _ = s.Dep.OnCellModified(op.Table, rowID, col)
						}
					}
				}
			}
		}
		return &Result{Affected: len(affected), Message: fmt.Sprintf("operation %d disapproved; inverse executed", st.OpID)}, nil
	}
	if err := s.Auth.Approve(st.OpID, s.User); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("operation %d approved", st.OpID)}, nil
}

func (s *Session) execShowPending(st *sqlparse.ShowPendingStmt) (*Result, error) {
	if s.Auth == nil {
		return nil, fmt.Errorf("%w: no authorization manager", ErrUnsupported)
	}
	res := &Result{Columns: []string{"op_id", "user", "table", "kind", "statement", "inverse", "status"}}
	for _, op := range s.Auth.Operations(st.Table, authz.StatusPending) {
		res.Rows = append(res.Rows, ARow{Values: value.Row{
			value.NewInt(op.ID), value.NewText(op.User), value.NewText(op.Table),
			value.NewText(string(op.Kind)), value.NewText(op.Statement),
			value.NewText(op.Inverse), value.NewText(string(op.Status)),
		}})
	}
	return res, nil
}
