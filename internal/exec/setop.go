package exec

// Streaming DISTINCT and set operations over projected rows.
//
// DISTINCT (and UNION, which is DISTINCT over the concatenation of its
// operands) runs through the spillable hash table of spill.go: duplicate
// elimination unions the annotations of the combined tuples (Section 3.4),
// which forces the operator to see its whole input before emitting — a later
// duplicate may still contribute annotations to an earlier row — but the
// resident state is one bucket per DISTINCT row, spilled under the memory
// budget, never one per input row.
//
// INTERSECT and EXCEPT materialize the RIGHT side as a key table (one merged
// entry per distinct right row) and stream the left side through it, so
// their cost is bounded by the right operand and the number of distinct left
// rows emitted. Column-count mismatches are detected exactly like the
// reference applySetOp: only when both operands actually produce rows.

import (
	"fmt"
)

// distinctBucket is one surviving DISTINCT row.
type distinctBucket struct {
	row ARow
}

var distinctOps = grouperOps[distinctBucket]{
	size: func(b *distinctBucket) int { return sizeOfARow(b.row) },
	encode: func(dst []byte, b *distinctBucket) []byte {
		return appendARowRec(dst, b.row)
	},
	decode: func(r *byteReader) (*distinctBucket, error) {
		b := &distinctBucket{row: r.aRow()}
		if r.err != nil {
			return nil, r.err
		}
		return b, nil
	},
	decodeInto: func(r *byteReader, b *distinctBucket) error {
		b.row = r.aRow()
		return r.err
	},
	merge: func(dst, src *distinctBucket) error {
		mergeDupAnns(&dst.row, &src.row)
		return nil
	},
}

// mergeDupAnns unions a duplicate's annotations into the kept row,
// column-wise, exactly like dedupeRows.
func mergeDupAnns(dst, src *ARow) {
	for c := range dst.Anns {
		if c < len(src.Anns) {
			dst.Anns[c] = unionAnnotations(dst.Anns[c], src.Anns[c])
		}
	}
}

// distinctIter deduplicates projected rows in first-seen order.
type distinctIter struct {
	in      aRowIter
	grouper *spillGrouper[distinctBucket]

	started bool
	next    func() (*distinctBucket, bool, error)
	keyBuf  []byte
}

func newDistinctIter(in aRowIter, budget int, sf *spillFile) *distinctIter {
	return &distinctIter{in: in, grouper: newSpillGrouper(distinctOps, budget, sf)}
}

func (d *distinctIter) consume() error {
	for {
		row, ok, err := d.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		d.keyBuf = appendRowKey(d.keyBuf[:0], row)
		if b := d.grouper.lookup(d.keyBuf); b != nil {
			mergeDupAnns(&b.row, &row)
		} else if !d.grouper.overflowing() {
			d.grouper.insert(string(d.keyBuf), &distinctBucket{row: row})
		} else {
			// Frozen table: every non-resident observation streams to disk as
			// a delta. Once a delta for this row is on disk its values are
			// redundant — only the annotations of later duplicates matter.
			delta := distinctBucket{row: row}
			if d.grouper.flushedBefore(d.keyBuf) {
				delta.row = ARow{Anns: row.Anns}
			}
			if err := d.grouper.appendDelta(d.keyBuf, &delta); err != nil {
				return err
			}
		}
	}
}

func (d *distinctIter) Next() (ARow, bool, error) {
	if !d.started {
		d.started = true
		if err := d.consume(); err != nil {
			return ARow{}, false, err
		}
		next, err := d.grouper.finish()
		if err != nil {
			return ARow{}, false, err
		}
		d.next = next
	}
	b, ok, err := d.next()
	if err != nil || !ok {
		return ARow{}, false, err
	}
	return b.row, true, nil
}

// concatIter chains the two operands of a UNION, checking the column counts
// the way the reference executor does: an error only when both sides produce
// at least one row and they disagree.
type concatIter struct {
	left, right aRowIter
	onRight     bool
	leftCols    int // -1 until the first left row
}

func newConcatIter(left, right aRowIter) *concatIter {
	return &concatIter{left: left, right: right, leftCols: -1}
}

func (c *concatIter) Next() (ARow, bool, error) {
	if !c.onRight {
		row, ok, err := c.left.Next()
		if err != nil {
			return ARow{}, false, err
		}
		if ok {
			if c.leftCols < 0 {
				c.leftCols = len(row.Values)
			}
			return row, true, nil
		}
		c.onRight = true
	}
	row, ok, err := c.right.Next()
	if err != nil || !ok {
		return ARow{}, false, err
	}
	if c.leftCols >= 0 && len(row.Values) != c.leftCols {
		return ARow{}, false, fmt.Errorf("%w: set operands have different column counts", ErrUnsupported)
	}
	return row, true, nil
}

// setOpIter implements INTERSECT and EXCEPT: the right operand is drained
// into a key table on the first Next, then left rows stream through it.
type setOpIter struct {
	intersect   bool
	left, right aRowIter

	started   bool
	rightRows map[string]*ARow // merged annotations per distinct right row (nil values for EXCEPT)
	rightCols int              // -1 while the right side is empty
	seen      map[string]bool
	keyBuf    []byte
}

func newSetOpIter(intersect bool, left, right aRowIter) *setOpIter {
	return &setOpIter{intersect: intersect, left: left, right: right, rightCols: -1}
}

func (s *setOpIter) buildRight() error {
	s.rightRows = map[string]*ARow{}
	s.seen = map[string]bool{}
	for {
		row, ok, err := s.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if s.rightCols < 0 {
			s.rightCols = len(row.Values)
		}
		s.keyBuf = appendRowKey(s.keyBuf[:0], row)
		key := string(s.keyBuf)
		if existing, ok := s.rightRows[key]; ok {
			if s.intersect && existing != nil {
				mergeDupAnns(existing, &row)
			}
			continue
		}
		if s.intersect {
			r := row
			s.rightRows[key] = &r
		} else {
			s.rightRows[key] = nil
		}
	}
}

func (s *setOpIter) Next() (ARow, bool, error) {
	if !s.started {
		s.started = true
		if err := s.buildRight(); err != nil {
			return ARow{}, false, err
		}
	}
	for {
		row, ok, err := s.left.Next()
		if err != nil || !ok {
			return ARow{}, false, err
		}
		if s.rightCols >= 0 && len(row.Values) != s.rightCols {
			return ARow{}, false, fmt.Errorf("%w: set operands have different column counts", ErrUnsupported)
		}
		s.keyBuf = appendRowKey(s.keyBuf[:0], row)
		key := string(s.keyBuf)
		if s.seen[key] {
			continue
		}
		match, inRight := s.rightRows[key]
		if s.intersect {
			if !inRight {
				continue
			}
			s.seen[key] = true
			mergeDupAnns(&row, match)
			return row, true, nil
		}
		if inRight {
			continue
		}
		s.seen[key] = true
		return row, true, nil
	}
}
