package exec

import (
	"context"
	"fmt"
	"testing"

	"bdbms/internal/value"
)

// execAll runs one query on all three executors (naive reference, planned
// row-at-a-time, planned vectorized) and asserts they agree, returning the
// vectorized result.
func execAll(t *testing.T, s *Session, query string) *Result {
	t.Helper()
	s.NoOptimize = true
	naive, err := s.Exec(query)
	s.NoOptimize = false
	if err != nil {
		t.Fatalf("naive %q: %v", query, err)
	}
	s.NoVectorize = true
	rowPath, err := s.Exec(query)
	s.NoVectorize = false
	if err != nil {
		t.Fatalf("row path %q: %v", query, err)
	}
	vec, err := s.Exec(query)
	if err != nil {
		t.Fatalf("vectorized %q: %v", query, err)
	}
	want := canonResult(naive)
	if got := canonResult(rowPath); got != want {
		t.Fatalf("row path != naive for %q\n got: %s\nwant: %s", query, got, want)
	}
	if got := canonResult(vec); got != want {
		t.Fatalf("vectorized != naive for %q\n got: %s\nwant: %s", query, got, want)
	}
	return vec
}

// TestSumExactBeyondFloat53 is the regression test for integer SUM/AVG
// exactness: summing int64 values whose total exceeds 2^53 must produce the
// exact integer on every executor. Before the shared aggState, all three
// accumulated in float64 and silently rounded.
func TestSumExactBeyondFloat53(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE Big (ID INT NOT NULL PRIMARY KEY, V INT)`)
	// 2^53 = 9007199254740992; float64 cannot represent 2^53 + 1. Three rows
	// summing to 2^53 + 3 prove exactness: a float64 accumulator lands on an
	// even neighbour instead.
	const big = int64(1) << 53
	vals := []int64{big - 2, 3, 2}
	const want = int64(1)<<53 + 3
	for i, v := range vals {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO Big VALUES (%d, %d)`, i+1, v))
	}
	res := execAll(t, s, `SELECT SUM(V), COUNT(*) FROM Big`)
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(res.Rows))
	}
	got := res.Rows[0].Values[0]
	if got.Type() != value.Int {
		t.Fatalf("SUM type = %v, want exact INT (value %s)", got.Type(), got)
	}
	if got.Int() != want {
		t.Errorf("SUM = %d, want %d (off by %d)", got.Int(), want, got.Int()-want)
	}

	// A FLOAT joining the group demotes the sum to float64 — the documented,
	// pre-existing behaviour — without disturbing other groups.
	mustExec(t, s, `CREATE TABLE Mix (ID INT NOT NULL PRIMARY KEY, G TEXT, V FLOAT)`)
	mustExec(t, s, `INSERT INTO Mix VALUES (1, 'a', 1.5)`)
	mustExec(t, s, `INSERT INTO Mix VALUES (2, 'a', 2.0)`)
	res = execAll(t, s, `SELECT G, SUM(V) FROM Mix GROUP BY G`)
	if got := res.Rows[0].Values[1]; got.Type() != value.Float || got.Float() != 3.5 {
		t.Errorf("float SUM = %s, want 3.5", got)
	}
}

// TestSkewedGroupBySpillTinyBudget is the regression test for the unbounded
// partition re-merge: under a one-byte budget every row triggers a spill
// flush, and with one dominant key nearly every flushed record lands in the
// same partition. The old merge decoded that whole partition into memory;
// the recursive merge folds the dominant key incrementally and re-partitions
// the long tail, so the query must now complete — with exact aggregates and
// first-seen group order.
func TestSkewedGroupBySpillTinyBudget(t *testing.T) {
	s := newSession(t)
	s.SpillBudget = 1
	mustExec(t, s, `CREATE TABLE Skew (ID INT NOT NULL PRIMARY KEY, G TEXT, V INT)`)
	// 400 rows of one hot key interleaved with 100 distinct cold keys.
	const hot, cold = 400, 100
	id := 0
	insert := func(g string, v int) {
		id++
		mustExec(t, s, fmt.Sprintf(`INSERT INTO Skew VALUES (%d, '%s', %d)`, id, g, v))
	}
	wantHotSum := 0
	for i := 0; i < hot; i++ {
		insert("hot", i)
		wantHotSum += i
		if i < cold {
			insert(fmt.Sprintf("cold%03d", i), 1000+i)
		}
	}
	spillEvents.Store(0)
	res := execAll(t, s, `SELECT G, COUNT(*), SUM(V) FROM Skew GROUP BY G`)
	if spillEvents.Load() == 0 {
		t.Fatal("budget 1 never spilled; the test is not exercising the merge")
	}
	if len(res.Rows) != 1+cold {
		t.Fatalf("got %d groups, want %d", len(res.Rows), 1+cold)
	}
	// First-seen order puts the hot group first.
	first := res.Rows[0]
	if first.Values[0].Text() != "hot" {
		t.Errorf("first group = %s, want hot (first-seen order)", first.Values[0])
	}
	if first.Values[1].Int() != hot || first.Values[2].Int() != int64(wantHotSum) {
		t.Errorf("hot group = (%s, %s), want (%d, %d)", first.Values[1], first.Values[2], hot, wantHotSum)
	}
}

// TestVectorizedFallsBackOnStaleMirror pins the MVCC handshake: a snapshot
// opened before a write must not consume the rebuilt columnar mirror, and a
// write between mirror build and query must invalidate the cache — both
// cases fall back to the row scan and stay correct.
func TestVectorizedFallsBackOnStaleMirror(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE Ev (ID INT NOT NULL PRIMARY KEY, G TEXT, V INT)`)
	for i := 1; i <= 10; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO Ev VALUES (%d, 'g%d', %d)`, i, i%3, i))
	}
	// Warm the mirror.
	execAll(t, s, `SELECT G, COUNT(*) FROM Ev GROUP BY G`)

	// Open a cursor (pinning a snapshot), then delete a row before draining.
	rows, err := s.Query(context.Background(), `SELECT ID FROM Ev`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	mustExec(t, s, `DELETE FROM Ev WHERE ID = 10`)
	n := 1
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("snapshot cursor saw %d rows, want 10 (pre-delete state)", n)
	}
	// After the write, a fresh query agrees across executors on the new state.
	res := execAll(t, s, `SELECT COUNT(*) FROM Ev`)
	if got := res.Rows[0].Values[0].Int(); got != 9 {
		t.Errorf("post-delete COUNT(*) = %d, want 9", got)
	}
}
