package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"bdbms/internal/sqlparse"
	"bdbms/internal/value"
)

func loadGenes(t *testing.T, s *Session, n int) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, Score INT)`)
	for i := 0; i < n; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO Gene VALUES ('G%04d', 'name%d', %d)`, i, i, i%97))
	}
}

// TestQueryStreamsLazily proves the cursor pulls rows from the scan instead
// of materializing: after fetching the first row of a full-table SELECT, the
// underlying scan iterator must not have advanced past the first few RowIDs.
func TestQueryStreamsLazily(t *testing.T) {
	s := newSession(t)
	loadGenes(t, s, 500)
	rows, err := s.Query(context.Background(), `SELECT GID, GName FROM Gene`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	proj, ok := rows.ait.(*projectIter)
	if !ok {
		t.Fatalf("pipeline root is %T, want *projectIter", rows.ait)
	}
	dec, ok := proj.in.(*decorateIter)
	if !ok {
		t.Fatalf("pipeline stage is %T, want *decorateIter", proj.in)
	}
	// The default pipeline source for a plain full scan is the vectorized
	// batch adapter, which is lazy at chunk granularity: the first row must
	// not have decoded more than the first chunk. A NoVectorize session keeps
	// the row-at-a-time scan, lazy per row.
	switch src := dec.in.(type) {
	case *batchRowsIter:
		if src.src.ci > 1 {
			t.Errorf("batch scan decoded %d chunks for the first result; cursor is not lazy", src.src.ci)
		}
	case *scanIter:
		if src.pos > 2 {
			t.Errorf("scan advanced %d rows for the first result; cursor is not lazy", src.pos)
		}
	default:
		t.Fatalf("pipeline source is %T, want *batchRowsIter or *scanIter", dec.in)
	}
	var gid, name string
	if err := rows.Scan(&gid, &name); err != nil {
		t.Fatal(err)
	}
	if gid != "G0000" || name != "name0" {
		t.Errorf("first row = %q, %q", gid, name)
	}
}

// TestQueryLimitStopsEarly verifies LIMIT terminates the stream without
// touching the rest of the table.
func TestQueryLimitStopsEarly(t *testing.T) {
	s := newSession(t)
	loadGenes(t, s, 200)
	rows, err := s.Query(context.Background(), `SELECT GID FROM Gene LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("LIMIT 3 returned %d rows", n)
	}
}

// TestQueryContextCancel verifies a canceled context aborts iteration with
// context.Canceled, both before the first row and mid-stream.
func TestQueryContextCancel(t *testing.T) {
	s := newSession(t)
	loadGenes(t, s, 300)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := s.Query(ctx, `SELECT GID FROM Gene`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Next() {
		t.Error("Next succeeded on a canceled context")
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", rows.Err())
	}
	rows.Close()

	ctx, cancel = context.WithCancel(context.Background())
	rows, err = s.Query(ctx, `SELECT GID FROM Gene`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("first row: %v", rows.Err())
	}
	cancel()
	for rows.Next() {
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Errorf("mid-stream Err() = %v, want context.Canceled", rows.Err())
	}
}

// TestQueryContextCancelJoin verifies the check fires inside join iterators
// too, and on the naive executor's scan loop.
func TestQueryContextCancelJoin(t *testing.T) {
	s := newSession(t)
	loadGenes(t, s, 100)
	mustExec(t, s, `CREATE TABLE Protein (PID TEXT NOT NULL PRIMARY KEY, GID TEXT)`)
	for i := 0; i < 100; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO Protein VALUES ('P%04d', 'G%04d')`, i, i))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The hash join drains its build side when the pipeline is assembled, so
	// a pre-canceled context may surface at Query time or at first Next.
	rows, err := s.Query(ctx, `SELECT Gene.GID, PID FROM Gene, Protein WHERE Gene.GID = Protein.GID`)
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("join query error = %v, want context.Canceled", err)
		}
	} else {
		if rows.Next() || !errors.Is(rows.Err(), context.Canceled) {
			t.Errorf("join under canceled context: err=%v", rows.Err())
		}
		rows.Close()
	}

	naive := sameEngineSession(s, s.User)
	naive.NoOptimize = true
	nrows, err := naive.Query(ctx, `SELECT GID FROM Gene`)
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("naive query error = %v", err)
		}
		return
	}
	if nrows.Next() || !errors.Is(nrows.Err(), context.Canceled) {
		t.Errorf("naive under canceled context: err=%v", nrows.Err())
	}
	nrows.Close()
}

// TestDMLContextCancel verifies a canceled context aborts UPDATE/DELETE
// before any mutation happens (the row-matching phase checks it).
func TestDMLContextCancel(t *testing.T) {
	s := newSession(t)
	loadGenes(t, s, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, sql := range []string{
		`UPDATE Gene SET Score = 0 WHERE Score >= 0`,
		`DELETE FROM Gene WHERE Score >= 0`,
		`INSERT INTO Gene VALUES ('X', 'x', 1)`,
	} {
		rows, err := s.queryStmt(ctx, mustParse(t, sql), nil, nil)
		if err == nil {
			err = rows.Err()
			rows.Close()
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s under canceled ctx: %v", sql, err)
		}
	}
	res := mustExec(t, s, `SELECT COUNT(*) FROM Gene`)
	if res.Rows[0].Values[0].Int() != 50 {
		t.Errorf("canceled DML mutated the table: %v rows", res.Rows[0].Values[0])
	}
}

func mustParse(t *testing.T, sql string) sqlparse.Statement {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

// TestPlaceholderBindingAllTypes runs a prepared INSERT and point SELECTs
// binding every value type: TEXT, INT, FLOAT, BOOL, SEQUENCE and NULL.
func TestPlaceholderBindingAllTypes(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE Sample (
		ID INT NOT NULL PRIMARY KEY, Name TEXT, Ratio FLOAT,
		Active BOOL, Seq SEQUENCE, Note TEXT)`)

	ins, err := s.Prepare(`INSERT INTO Sample VALUES (?, ?, ?, ?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumParams() != 6 {
		t.Fatalf("NumParams = %d", ins.NumParams())
	}
	if _, err := ins.Exec(int64(1), "alpha", 0.5, true, value.NewSequence("ATGC"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Exec(2, "beta", float32(1.5), false, "CCGG", "noted"); err != nil {
		t.Fatal(err)
	}

	rows, err := s.Query(context.Background(),
		`SELECT Name, Ratio, Active, Seq, Note FROM Sample WHERE ID = ?`, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no row: %v", rows.Err())
	}
	var name, seq string
	var ratio float64
	var active bool
	var note value.Value
	if err := rows.Scan(&name, &ratio, &active, &seq, &note); err != nil {
		t.Fatal(err)
	}
	if name != "alpha" || ratio != 0.5 || !active || seq != "ATGC" || !note.IsNull() {
		t.Errorf("row = %q %v %v %q %v", name, ratio, active, seq, note)
	}

	// Bind every comparable type in WHERE.
	for _, tc := range []struct {
		sql  string
		arg  any
		want int
	}{
		{`SELECT ID FROM Sample WHERE Name = ?`, "beta", 1},
		{`SELECT ID FROM Sample WHERE Ratio > ?`, 1.0, 1},
		{`SELECT ID FROM Sample WHERE Active = ?`, true, 1},
		{`SELECT ID FROM Sample WHERE Seq = ?`, value.NewSequence("CCGG"), 1},
		{`SELECT ID FROM Sample WHERE ID = ?`, 2, 1},
		{`SELECT ID FROM Sample WHERE Name = ?`, "missing", 0},
	} {
		res, err := s.QueryAll(tc.sql, tc.arg)
		if err != nil {
			t.Errorf("%s: %v", tc.sql, err)
			continue
		}
		if len(res) != tc.want {
			t.Errorf("%s with %v: %d rows, want %d", tc.sql, tc.arg, len(res), tc.want)
		}
	}
}

// QueryAll is a test convenience: run a bound query and drain it.
func (s *Session) QueryAll(sql string, args ...any) ([]ARow, error) {
	rows, err := s.Query(context.Background(), sql, args...)
	if err != nil {
		return nil, err
	}
	res, err := rows.materialize()
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

// TestPlaceholderArgErrors covers count mismatches and unsupported types.
func TestPlaceholderArgErrors(t *testing.T) {
	s := newSession(t)
	loadGenes(t, s, 3)

	if _, err := s.Query(context.Background(), `SELECT GID FROM Gene WHERE GID = ?`); !errors.Is(err, ErrBadArgs) {
		t.Errorf("missing arg: %v", err)
	}
	if _, err := s.Query(context.Background(), `SELECT GID FROM Gene WHERE GID = ?`, "a", "b"); !errors.Is(err, ErrBadArgs) {
		t.Errorf("extra arg: %v", err)
	}
	if _, err := s.Query(context.Background(), `SELECT GID FROM Gene`, "stray"); !errors.Is(err, ErrBadArgs) {
		t.Errorf("arg without placeholder: %v", err)
	}
	if _, err := s.Query(context.Background(), `SELECT GID FROM Gene WHERE GID = ?`, struct{}{}); !errors.Is(err, ErrBadArgs) {
		t.Errorf("unsupported type: %v", err)
	}
	// Exec on a statement with placeholders has no way to bind them.
	if _, err := s.Exec(`SELECT GID FROM Gene WHERE GID = ?`); !errors.Is(err, ErrBadArgs) {
		t.Errorf("Exec with placeholder: %v", err)
	}
}

// TestPreparedPlanCache verifies a prepared streamable SELECT plans once,
// reuses the cached plan across executions, and replans after DDL moves the
// schema version.
func TestPreparedPlanCache(t *testing.T) {
	s := newSession(t)
	loadGenes(t, s, 50)
	stmt, err := s.Prepare(`SELECT GID, GName FROM Gene WHERE GID = ?`)
	if err != nil {
		t.Fatal(err)
	}
	run := func(arg string, want int) {
		t.Helper()
		rows, err := stmt.Query(context.Background(), arg)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		n := 0
		for rows.Next() {
			n++
		}
		if rows.Err() != nil {
			t.Fatal(rows.Err())
		}
		if n != want {
			t.Fatalf("%q returned %d rows, want %d", arg, n, want)
		}
	}
	run("G0007", 1)
	planned := stmt.plan
	if planned == nil {
		t.Fatal("no plan cached after first execution")
	}
	if got := planned.phys.String(); !strings.Contains(got, "IndexScan(Gene.GID = ?)") {
		t.Errorf("prepared plan = %q, want deferred index probe", got)
	}
	run("G0011", 1)
	run("missing", 0)
	if stmt.plan != planned {
		t.Error("plan was rebuilt despite unchanged schema")
	}
	// DDL bumps the schema version: the next execution must replan.
	mustExec(t, s, `CREATE INDEX ON Gene (Score)`)
	run("G0001", 1)
	if stmt.plan == planned {
		t.Error("plan not invalidated by CREATE INDEX")
	}
}

// TestPreparedDeferredProbeExecution checks a deferred probe returns exactly
// the rows a literal query would, for both hit and miss, and that a prepared
// DML statement re-binds correctly.
func TestPreparedDeferredProbeExecution(t *testing.T) {
	s := newSession(t)
	loadGenes(t, s, 100)
	stmt, err := s.Prepare(`SELECT Score FROM Gene WHERE GID = ?`)
	if err != nil {
		t.Fatal(err)
	}
	for _, gid := range []string{"G0000", "G0042", "G0099"} {
		res, err := stmt.Exec(gid)
		if err != nil {
			t.Fatal(err)
		}
		lit := mustExec(t, s, fmt.Sprintf(`SELECT Score FROM Gene WHERE GID = '%s'`, gid))
		if len(res.Rows) != 1 || len(lit.Rows) != 1 ||
			!res.Rows[0].Values[0].Equal(lit.Rows[0].Values[0]) {
			t.Errorf("prepared(%q) = %v, literal = %v", gid, res.Rows, lit.Rows)
		}
	}

	upd, err := s.Prepare(`UPDATE Gene SET Score = ? WHERE GID = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := upd.Exec(1000, "G0005"); err != nil || res.Affected != 1 {
		t.Fatalf("prepared update: %v, affected %d", err, res.Affected)
	}
	check := mustExec(t, s, `SELECT Score FROM Gene WHERE GID = 'G0005'`)
	if check.Rows[0].Values[0].Int() != 1000 {
		t.Errorf("update not applied: %v", check.Rows[0].Values[0])
	}
}

// TestQueryAnnotationsStream verifies annotations and the AWHERE / FILTER
// per-row operators work on the streaming path.
func TestQueryAnnotationsStream(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)`)
	mustExec(t, s, `CREATE ANNOTATION TABLE Ann ON Gene`)
	mustExec(t, s, `INSERT INTO Gene VALUES ('g1', 'AAA'), ('g2', 'CCC'), ('g3', 'TTT')`)
	mustExec(t, s, `ADD ANNOTATION TO Gene.Ann VALUE '<Annotation>curated</Annotation>' ON (SELECT * FROM Gene WHERE GID = 'g2')`)
	mustExec(t, s, `ADD ANNOTATION TO Gene.Ann VALUE '<Annotation>raw import</Annotation>' ON (SELECT GSequence FROM Gene)`)

	rows, err := s.Query(context.Background(),
		`SELECT GID FROM Gene ANNOTATION(Ann) AWHERE ANN.VALUE LIKE ?`, "%curated%")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []string
	for rows.Next() {
		got = append(got, rows.Row().Values[0].Text())
		if len(rows.Annotations()) != 1 {
			t.Errorf("annotation columns = %d", len(rows.Annotations()))
		}
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	if len(got) != 1 || got[0] != "g2" {
		t.Errorf("AWHERE stream = %v", got)
	}

	// FILTER keeps rows but drops non-matching annotations.
	res, err := s.QueryAll(`SELECT GID FROM Gene ANNOTATION(Ann) FILTER ANN.VALUE LIKE '%curated%'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("FILTER dropped rows: %d", len(res))
	}
	for _, r := range res {
		for _, a := range r.AnnotationsFlat() {
			if !strings.Contains(a.PlainBody(), "curated") {
				t.Errorf("FILTER kept %q", a.PlainBody())
			}
		}
	}
}

// TestCursorDrainMatchesExec cross-checks the cursor materialization against
// Exec on shapes that fall back to eager execution (ORDER BY, GROUP BY,
// DISTINCT, set ops) and shapes that stream.
func TestCursorDrainMatchesExec(t *testing.T) {
	s := newSession(t)
	loadGenes(t, s, 60)
	for _, sql := range []string{
		`SELECT GID, Score FROM Gene WHERE Score > 40`,
		`SELECT GID FROM Gene ORDER BY GID DESC LIMIT 5`,
		`SELECT Score, COUNT(*) FROM Gene GROUP BY Score HAVING COUNT(*) > 1`,
		`SELECT DISTINCT Score FROM Gene`,
		`SELECT GID FROM Gene WHERE Score < 10 UNION SELECT GID FROM Gene WHERE Score > 90`,
	} {
		want := mustExec(t, s, sql)
		got, err := s.QueryAll(sql)
		if err != nil {
			t.Errorf("%s: %v", sql, err)
			continue
		}
		if len(got) != len(want.Rows) {
			t.Errorf("%s: cursor %d rows, exec %d", sql, len(got), len(want.Rows))
			continue
		}
		for i := range got {
			for c := range got[i].Values {
				if !got[i].Values[c].Equal(want.Rows[i].Values[c]) {
					t.Errorf("%s row %d col %d: %v != %v", sql, i, c, got[i].Values[c], want.Rows[i].Values[c])
				}
			}
		}
	}
}

// TestRowsDMLResult verifies the cursor surface of non-SELECT statements.
func TestRowsDMLResult(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE T (A INT)`)
	rows, err := s.Query(context.Background(), `INSERT INTO T VALUES (?), (?)`, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Next() {
		t.Error("DML cursor has rows")
	}
	if rows.Affected() != 2 {
		t.Errorf("Affected = %d", rows.Affected())
	}
	if rows.Message() == "" {
		t.Error("no message")
	}
	rows.Close()
}

// TestConcurrentSessionsExec exercises reader/writer concurrency at the
// exec layer: parallel streaming readers against a concurrent writer must
// not race, and every reader must observe a consistent snapshot per cursor.
func TestConcurrentSessionsExec(t *testing.T) {
	s := newSession(t)
	loadGenes(t, s, 200)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := sameEngineSession(s, s.User)
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows, err := r.Query(context.Background(), `SELECT GID, Score FROM Gene WHERE Score >= ?`, 0)
				if err != nil {
					t.Error(err)
					return
				}
				n := 0
				for rows.Next() {
					n++
				}
				rows.Close()
				if rows.Err() != nil {
					t.Error(rows.Err())
					return
				}
				if n < 200 {
					t.Errorf("reader saw %d rows", n)
					return
				}
			}
		}()
	}
	writer := sameEngineSession(s, s.User)
	for i := 0; i < 50; i++ {
		mustExec(t, writer, fmt.Sprintf(`INSERT INTO Gene VALUES ('W%04d', 'w', %d)`, i, i))
		mustExec(t, writer, fmt.Sprintf(`UPDATE Gene SET Score = %d WHERE GID = 'W%04d'`, i+1, i))
	}
	close(stop)
	wg.Wait()
}

// TestPlaceholderPlanShapes checks explain output for deferred probes.
func TestPlaceholderPlanShapes(t *testing.T) {
	s := newSession(t)
	s.NoReorder = true // assert syntactic shapes; cost-based shapes have goldens
	loadGenes(t, s, 10)
	mustExec(t, s, `CREATE TABLE Protein (PID TEXT NOT NULL PRIMARY KEY, GID TEXT)`)
	for _, tc := range []struct{ sql, want string }{
		{`SELECT * FROM Gene WHERE GID = ?`, "IndexScan(Gene.GID = ?)"},
		{`SELECT * FROM Gene WHERE Score = ?`, "SeqScan(Gene)"}, // unindexed: pushed filter only
		{`SELECT * FROM Gene, Protein WHERE Gene.GID = Protein.GID AND Protein.PID = ?`,
			"HashJoin(Protein via IndexScan(Protein.PID = ?))"},
	} {
		stmt, err := sqlparse.Parse(tc.sql)
		if err != nil {
			t.Fatal(err)
		}
		desc, err := s.explainSelect(stmt.(*sqlparse.SelectStmt))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(desc, tc.want) {
			t.Errorf("%s => %q, want %q", tc.sql, desc, tc.want)
		}
	}
}
