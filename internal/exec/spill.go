package exec

// Spill infrastructure for the blocking operators (grouped aggregation,
// DISTINCT, external sort): a per-operator memory budget, a lazily created
// temp-file pager shared by the operator's runs, binary codecs for rows and
// annotations, and a partitioned hash table that moves itself to disk when
// the budget is exceeded.
//
// The budget bounds the operator's *transient* state — the in-memory hash
// table or sort batch — not the size of the input or the output: an operator
// whose working set exceeds the budget flushes it to uvarint-framed records
// in heap run files (internal/heap) on a pager.OpenTemp file, and finishes
// with a streaming merge whose memory cost is one page buffer per run.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"bdbms/internal/annotation"
	"bdbms/internal/heap"
	"bdbms/internal/pager"
	"bdbms/internal/value"
)

// ErrSpill categorizes I/O failures on a query's spill surface (creating
// the temp file, or reading/writing run pages in it — typically ENOSPC on
// a full disk). A query failing with errors.Is(err, ErrSpill) lost only
// its own scratch space: table data is untouched, the temp file has been
// removed, and the session remains fully usable.
var ErrSpill = errors.New("exec: query spill I/O failed")

// spillEvents counts spill flushes across all operators; the spill tests use
// it to prove a small budget actually pushed state to disk.
var spillEvents atomic.Int64

// defaultSpillBudget is the per-operator memory budget when the session does
// not set one: each blocking operator (group, distinct, sort, top-n input)
// may hold roughly this many bytes before spilling to its temp file.
const defaultSpillBudget = 8 << 20

// spillPartitions is the fan-out of a spilling hash table.
const spillPartitions = 16

// spillBudget returns the session's per-operator memory budget in bytes.
func (s *Session) spillBudget() int {
	if s.SpillBudget > 0 {
		return s.SpillBudget
	}
	return defaultSpillBudget
}

// openSpillPager creates the temp pager backing an operator's spill file.
// It is a variable so the fault-injection tests can swap in a pager that
// runs out of disk mid-query.
var openSpillPager = func() (pager.Pager, error) {
	return pager.OpenTemp("")
}

// spillFile lazily opens one temp pager per blocking operator. It must be
// closed when the operator's output is exhausted (the cursor's finish hook
// does it), which also deletes the backing file.
type spillFile struct {
	pgr pager.Pager
}

func (sf *spillFile) pager() (pager.Pager, error) {
	if sf.pgr == nil {
		p, err := openSpillPager()
		if err != nil {
			return nil, fmt.Errorf("%w: create temp file: %w", ErrSpill, err)
		}
		sf.pgr = spillPager{p}
	}
	return sf.pgr, nil
}

// spilled reports whether a temp file was actually created.
func (sf *spillFile) spilled() bool { return sf.pgr != nil }

func (sf *spillFile) Close() {
	if sf.pgr != nil {
		_ = sf.pgr.Close()
		sf.pgr = nil
	}
}

// spillPager wraps the temp-file pager so every I/O failure on the spill
// surface is categorized under ErrSpill: the run writers and readers built
// on it (heap.RunWriter/RunReader) propagate page errors verbatim, so
// wrapping here covers all of them at once. Close passes through to the
// embedded pager, which deletes the backing temp file.
type spillPager struct {
	pager.Pager
}

func (p spillPager) Allocate() (pager.PageID, error) {
	id, err := p.Pager.Allocate()
	if err != nil {
		return id, fmt.Errorf("%w: %w", ErrSpill, err)
	}
	return id, nil
}

func (p spillPager) Read(id pager.PageID) ([]byte, error) {
	data, err := p.Pager.Read(id)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrSpill, err)
	}
	return data, nil
}

func (p spillPager) Write(id pager.PageID, data []byte) error {
	if err := p.Pager.Write(id, data); err != nil {
		return fmt.Errorf("%w: %w", ErrSpill, err)
	}
	return nil
}

// --- binary codec ---------------------------------------------------------------------------

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }
func appendVarint(dst []byte, v int64) []byte   { return binary.AppendVarint(dst, v) }

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// byteReader decodes the codec above; the first error sticks.
type byteReader struct {
	buf []byte
	err error
}

func (r *byteReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("exec: corrupt spill record")
	}
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *byteReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *byteReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil || uint64(len(r.buf)) < n {
		r.fail()
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *byteReader) str() string { return string(r.bytes()) }

func (r *byteReader) byteVal() byte {
	if r.err != nil || len(r.buf) == 0 {
		r.fail()
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

func (r *byteReader) float() float64 {
	if r.err != nil || len(r.buf) < 8 {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.buf[:8]))
	r.buf = r.buf[8:]
	return v
}

func appendFloat(dst []byte, f float64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(f))
	return append(dst, b[:]...)
}

func (r *byteReader) row() value.Row {
	b := r.bytes()
	if r.err != nil {
		return nil
	}
	row, err := value.DecodeRow(b)
	if err != nil {
		r.err = err
		return nil
	}
	return row
}

func appendValueRow(dst []byte, row value.Row) []byte {
	return appendBytes(dst, value.EncodeRow(row))
}

func (r *byteReader) oneValue() value.Value {
	if r.err != nil {
		return value.Value{}
	}
	v, n, err := value.DecodeValue(r.buf)
	if err != nil {
		r.err = err
		return value.Value{}
	}
	r.buf = r.buf[n:]
	return v
}

// appendOneValue writes one self-delimiting value (DecodeValue reports how
// many bytes it consumed, so no length frame is needed).
func appendOneValue(dst []byte, v value.Value) []byte {
	return v.Encode(dst)
}

// --- annotation codec -----------------------------------------------------------------------

// Spilled rows carry their full annotation payload, so a round trip through
// the temp file preserves propagation semantics exactly (IDs included, which
// is what keeps union-by-ID deduplication correct when spilled and resident
// rows merge).

func appendAnnotation(dst []byte, a *annotation.Annotation) []byte {
	dst = appendVarint(dst, a.ID)
	dst = appendString(dst, a.AnnTable)
	dst = appendString(dst, a.UserTable)
	dst = appendString(dst, a.Body)
	dst = appendString(dst, a.Author)
	dst = appendVarint(dst, a.CreatedAt.UnixNano())
	if a.Archived {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendVarint(dst, a.ArchivedAt.UnixNano())
	dst = appendUvarint(dst, uint64(len(a.Regions)))
	for _, rg := range a.Regions {
		dst = appendString(dst, rg.Table)
		dst = appendVarint(dst, int64(rg.ColStart))
		dst = appendVarint(dst, int64(rg.ColEnd))
		dst = appendVarint(dst, rg.RowStart)
		dst = appendVarint(dst, rg.RowEnd)
	}
	return dst
}

func (r *byteReader) annotationRec() *annotation.Annotation {
	a := &annotation.Annotation{
		ID:        r.varint(),
		AnnTable:  r.str(),
		UserTable: r.str(),
		Body:      r.str(),
		Author:    r.str(),
	}
	a.CreatedAt = time.Unix(0, r.varint()).UTC()
	a.Archived = r.byteVal() != 0
	a.ArchivedAt = time.Unix(0, r.varint()).UTC()
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	a.Regions = make([]annotation.Region, 0, n)
	for i := uint64(0); i < n; i++ {
		a.Regions = append(a.Regions, annotation.Region{
			Table:    r.str(),
			ColStart: int(r.varint()),
			ColEnd:   int(r.varint()),
			RowStart: r.varint(),
			RowEnd:   r.varint(),
		})
	}
	return a
}

func appendAnnCells(dst []byte, anns [][]*annotation.Annotation) []byte {
	dst = appendUvarint(dst, uint64(len(anns)))
	for _, cell := range anns {
		dst = appendUvarint(dst, uint64(len(cell)))
		for _, a := range cell {
			dst = appendAnnotation(dst, a)
		}
	}
	return dst
}

func (r *byteReader) annCells() [][]*annotation.Annotation {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	anns := make([][]*annotation.Annotation, n)
	for c := uint64(0); c < n; c++ {
		m := r.uvarint()
		if r.err != nil {
			return nil
		}
		for i := uint64(0); i < m; i++ {
			a := r.annotationRec()
			if r.err != nil {
				return nil
			}
			anns[c] = append(anns[c], a)
		}
	}
	return anns
}

// appendARowRec frames one ARow. A nil Values slice is encoded as a
// payload-free record (flag 0): the DISTINCT grouper spills those for keys
// whose first observation already went to disk, since the merge discards
// every later observation's values anyway.
func appendARowRec(dst []byte, row ARow) []byte {
	if row.Values == nil {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		dst = appendValueRow(dst, row.Values)
	}
	return appendAnnCells(dst, row.Anns)
}

func (r *byteReader) aRow() ARow {
	var vals value.Row
	if r.byteVal() != 0 {
		vals = r.row()
	}
	return ARow{Values: vals, Anns: r.annCells()}
}

// --- size estimation ------------------------------------------------------------------------

// Budget accounting is approximate: it only needs to track the working set
// closely enough that a small budget forces spilling and the default never
// does on ordinary queries.

func sizeOfValues(vals value.Row) int {
	n := 24 + len(vals)*24
	for _, v := range vals {
		if t := v.Type(); t == value.Text || t == value.Sequence {
			n += len(v.Text())
		}
	}
	return n
}

func sizeOfAnnCells(anns [][]*annotation.Annotation) int {
	n := 24 + len(anns)*24
	for _, cell := range anns {
		n += len(cell) * 8 // shared pointers
	}
	return n
}

func sizeOfARow(row ARow) int {
	return sizeOfValues(row.Values) + sizeOfAnnCells(row.Anns)
}

// --- spillable hash table -------------------------------------------------------------------

// grouperOps parameterizes spillGrouper over its bucket type: grouped
// aggregation buckets (representative row + accumulators) and DISTINCT
// buckets (one output row) share the partition/flush/merge machinery.
type grouperOps[B any] struct {
	// size estimates the resident bytes of a bucket.
	size func(b *B) int
	// encode serializes a bucket into a spill record.
	encode func(dst []byte, b *B) []byte
	// decode deserializes a spill record.
	decode func(r *byteReader) (*B, error)
	// decodeInto, when non-nil, deserializes a spill record into a reusable
	// scratch bucket. The merge phase uses it for records that fold into an
	// already-resident entry — by far the common case for a spilling
	// aggregation, where it saves two allocations per record.
	decodeInto func(r *byteReader, b *B) error
	// merge folds src (observed later) into dst (observed earlier).
	merge func(dst, src *B) error
}

type groupEntry[B any] struct {
	seq    uint64
	bucket *B
}

// spillGrouper is a hash table keyed by string that preserves first-seen
// order and bounds its resident size: once the budget is reached the resident
// table freezes — keys already resident keep folding in memory for free, and
// every observation of any other key streams to a hash partition on a temp
// file as a small delta record (appendDelta). finish flushes the resident
// entries once, merges each partition's records back together by key, and
// streams the entries in global first-seen order (every record carries the
// sequence number of the observation that produced it; the merge keeps the
// earliest).
type spillGrouper[B any] struct {
	ops    grouperOps[B]
	budget int
	sf     *spillFile

	m       map[string]*groupEntry[B]
	order   []string
	used    int
	nextSeq uint64

	parts   []*heap.RunWriter
	spilled bool
	encBuf  []byte

	// flushed remembers keys that already have a delta record on disk, capped
	// at flushedCap entries so the side table stays a small fraction of the
	// budget. A key found here already has a spilled record carrying its
	// representative payload (the merge keeps the earliest observation's
	// payload and discards every later one), so callers may strip the payload
	// from the key's subsequent deltas. Keys beyond the cap simply spill
	// their payload every time, which the merge discards: slower, never
	// wrong.
	flushed    map[string]struct{}
	flushedCap int
}

func newSpillGrouper[B any](ops grouperOps[B], budget int, sf *spillFile) *spillGrouper[B] {
	return &spillGrouper[B]{ops: ops, budget: budget, sf: sf, m: map[string]*groupEntry[B]{}, flushedCap: budget / 32}
}

// flushedBefore reports whether an earlier delta already spilled this key
// (and with it the key's representative payload). Indexing the map through
// string(key) does not allocate, so the consume loops can probe with their
// reusable key buffers.
func (g *spillGrouper[B]) flushedBefore(key []byte) bool {
	_, ok := g.flushed[string(key)]
	return ok
}

// lookup returns the resident bucket for a key held in a reusable byte
// buffer, or nil. The map index through string(key) does not allocate on a
// hit, which is what the per-row consume loops need: one lookup per input
// row, allocation only when a group is genuinely new (insert).
func (g *spillGrouper[B]) lookup(key []byte) *B {
	if e, ok := g.m[string(key)]; ok {
		return e.bucket
	}
	return nil
}

// insert adds a fresh bucket for a key lookup just missed, at the next
// sequence number. Callers must check overflowing() first: once the budget is
// reached, non-resident keys go through appendDelta instead.
func (g *spillGrouper[B]) insert(key string, b *B) {
	g.m[key] = &groupEntry[B]{seq: g.nextSeq, bucket: b}
	g.nextSeq++
	g.order = append(g.order, key)
	g.used += len(key) + g.ops.size(b) + 48
}

// grow records extra resident bytes added to an existing bucket.
func (g *spillGrouper[B]) grow(n int) { g.used += n }

// overflowing reports whether the resident table has reached the budget and
// is frozen: observations of non-resident keys must spill as delta records.
func (g *spillGrouper[B]) overflowing() bool { return g.used > g.budget }

// appendDelta spills one observation of a non-resident key to the key's hash
// partition. The bucket is a caller-owned scratch holding just this
// observation's state; it is encoded immediately and never retained, so the
// per-observation cost is one varint-framed record append — no map insert, no
// bucket allocation, no later re-flush. The key is remembered in the flushed
// set (capped) so the caller can strip the representative payload from the
// key's subsequent deltas.
func (g *spillGrouper[B]) appendDelta(key []byte, b *B) error {
	pgr, err := g.sf.pager()
	if err != nil {
		return err
	}
	if g.parts == nil {
		g.parts = make([]*heap.RunWriter, spillPartitions)
		for i := range g.parts {
			g.parts[i] = heap.NewRunWriter(pgr)
		}
		g.spilled = true
		spillEvents.Add(1)
	}
	g.encBuf = g.encBuf[:0]
	g.encBuf = appendUvarint(g.encBuf, g.nextSeq)
	g.nextSeq++
	g.encBuf = appendBytes(g.encBuf, key)
	g.encBuf = g.ops.encode(g.encBuf, b)
	if err := g.parts[partitionBytes(key, 0)].Append(g.encBuf); err != nil {
		return err
	}
	if !g.flushedBefore(key) && g.flushedCap > 0 {
		if g.flushed == nil {
			g.flushed = make(map[string]struct{}, 64)
		}
		if len(g.flushed) < g.flushedCap {
			g.flushed[string(key)] = struct{}{}
		}
	}
	return nil
}

func partitionOf(key string) int { return partitionAt(key, 0) }

// partitionAt hashes a key into one of the spill partitions, salted by the
// re-partitioning depth so a hot partition's keys redistribute when its merge
// recurses (an unsalted hash would map them all to one sub-partition again).
// FNV-1a, inlined so the per-delta hot path allocates nothing.
func partitionAt(key string, depth int) int {
	h := (uint32(2166136261) ^ uint32(byte(depth))) * 16777619
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % spillPartitions)
}

// partitionBytes is partitionAt for a key held in a reusable byte buffer;
// the two must agree for every key.
func partitionBytes(key []byte, depth int) int {
	h := (uint32(2166136261) ^ uint32(byte(depth))) * 16777619
	for _, c := range key {
		h = (h ^ uint32(c)) * 16777619
	}
	return int(h % spillPartitions)
}

// maxMergeDepth caps the recursive re-partitioning of the merge phase. Each
// level splits a partition's keys 16 ways, so the cap is only reached when
// 16^6 splits still leave more distinct keys than the budget holds — at that
// point the merge proceeds in memory (the pre-existing behaviour for every
// partition).
const maxMergeDepth = 6

// spill writes every resident entry to its hash partition. It runs once, at
// finish time, when delta records were appended: the resident entries must
// join the same merge so each key ends up with a single output bucket. (A
// resident key never has delta records — residency means every observation
// folded in memory — but its record still lands in the partition its hash
// selects, alongside other keys' deltas.)
func (g *spillGrouper[B]) spill() error {
	pgr, err := g.sf.pager()
	if err != nil {
		return err
	}
	if g.parts == nil {
		g.parts = make([]*heap.RunWriter, spillPartitions)
		for i := range g.parts {
			g.parts[i] = heap.NewRunWriter(pgr)
		}
	}
	g.spilled = true
	spillEvents.Add(1)
	for _, key := range g.order {
		e := g.m[key]
		g.encBuf = g.encBuf[:0]
		g.encBuf = appendUvarint(g.encBuf, e.seq)
		g.encBuf = appendString(g.encBuf, key)
		g.encBuf = g.ops.encode(g.encBuf, e.bucket)
		if err := g.parts[partitionOf(key)].Append(g.encBuf); err != nil {
			return err
		}
	}
	clear(g.m)
	g.order = g.order[:0]
	g.used = 0
	return nil
}

// finish seals the table and returns a pull iterator over the entries in
// global first-seen order. When nothing was spilled this iterates the
// resident table; otherwise each partition is re-merged in memory (bounded
// by groups-per-partition, 1/16th of the distinct keys on average), written
// back as a seq-ordered run, and the partition runs are streamed through a
// k-way merge whose resident cost is one page plus one decoded bucket per
// partition.
func (g *spillGrouper[B]) finish() (func() (*B, bool, error), error) {
	if !g.spilled {
		i := 0
		return func() (*B, bool, error) {
			if i >= len(g.order) {
				return nil, false, nil
			}
			b := g.m[g.order[i]].bucket
			i++
			return b, true, nil
		}, nil
	}
	if err := g.spill(); err != nil { // flush the residual table
		return nil, err
	}
	pgr, err := g.sf.pager()
	if err != nil {
		return nil, err
	}
	merged := make([]heap.Run, 0, len(g.parts))
	for _, w := range g.parts {
		run, err := w.Finish()
		if err != nil {
			return nil, err
		}
		outs, err := g.mergePartition(pgr, run, 0)
		if err != nil {
			return nil, err
		}
		merged = append(merged, outs...)
	}
	g.parts = nil
	return g.mergeBySeq(pgr, merged)
}

// mergePartition folds one partition's records (several per key when flushes
// interleaved) into single entries and writes them back as seq-ordered runs
// whose key sets are disjoint, ready for the final k-way merge.
//
// The resident merge table itself respects the spill budget: each key's
// records fold into its resident entry as they stream past (a single dominant
// key costs one entry no matter how many flushes it survived), but once the
// resident keys exceed the budget, records of every further key are routed —
// framing intact, in order — to sub-partitions under a depth-salted hash and
// merged recursively. A key's first record decides its side, and the hash is
// deterministic, so all records of one key land in exactly one run. At
// maxMergeDepth the merge proceeds in memory regardless of the budget.
func (g *spillGrouper[B]) mergePartition(pgr pager.Pager, run heap.Run, depth int) ([]heap.Run, error) {
	type ent struct {
		seq    uint64
		key    string
		bucket *B
	}
	byKey := map[string]*ent{}
	var order []*ent
	resident := 0
	var sub []*heap.RunWriter
	var scratch *B
	rd := heap.NewRunReader(pgr, run)
	var rdr byteReader
	for {
		rec, ok, err := rd.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		rdr = byteReader{buf: rec}
		r := &rdr
		seq := r.uvarint()
		keyBytes := r.bytes()
		if e, ok := byKey[string(keyBytes)]; ok {
			// Records of one key arrive in append order, i.e. ascending seq:
			// the resident entry is the earlier observation.
			var b *B
			if g.ops.decodeInto != nil {
				if scratch == nil {
					scratch = new(B)
				}
				err = g.ops.decodeInto(r, scratch)
				b = scratch
			} else {
				b, err = g.ops.decode(r)
			}
			if err == nil && r.err != nil {
				err = r.err
			}
			if err != nil {
				return nil, err
			}
			if err := g.ops.merge(e.bucket, b); err != nil {
				return nil, err
			}
			continue
		}
		if resident > g.budget && depth < maxMergeDepth {
			// Over budget: defer this key (and all its later records, which
			// hash identically) to a sub-partition instead of growing the
			// resident table. The record is re-appended verbatim — seq, key
			// and bucket framing included.
			if sub == nil {
				sub = make([]*heap.RunWriter, spillPartitions)
				for i := range sub {
					sub[i] = heap.NewRunWriter(pgr)
				}
			}
			if err := sub[partitionBytes(keyBytes, depth+1)].Append(rec); err != nil {
				return nil, err
			}
			continue
		}
		b, err := g.ops.decode(r)
		if err == nil && r.err != nil {
			err = r.err
		}
		if err != nil {
			return nil, err
		}
		key := string(keyBytes)
		e := &ent{seq: seq, key: key, bucket: b}
		byKey[key] = e
		order = append(order, e)
		resident += len(key) + g.ops.size(b) + 48
	}
	sort.Slice(order, func(i, j int) bool { return order[i].seq < order[j].seq })
	w := heap.NewRunWriter(pgr)
	for _, e := range order {
		g.encBuf = g.encBuf[:0]
		g.encBuf = appendUvarint(g.encBuf, e.seq)
		g.encBuf = appendString(g.encBuf, e.key)
		g.encBuf = g.ops.encode(g.encBuf, e.bucket)
		if err := w.Append(g.encBuf); err != nil {
			return nil, err
		}
	}
	out, err := w.Finish()
	if err != nil {
		return nil, err
	}
	runs := []heap.Run{out}
	for _, sw := range sub {
		srun, err := sw.Finish()
		if err != nil {
			return nil, err
		}
		if srun.Head == pager.InvalidPageID {
			continue
		}
		sruns, err := g.mergePartition(pgr, srun, depth+1)
		if err != nil {
			return nil, err
		}
		runs = append(runs, sruns...)
	}
	return runs, nil
}

// mergeBySeq streams the seq-ordered partition runs in global seq order.
func (g *spillGrouper[B]) mergeBySeq(pgr pager.Pager, runs []heap.Run) (func() (*B, bool, error), error) {
	type head struct {
		seq    uint64
		bucket *B
		rd     *heap.RunReader
	}
	var heads []*head
	advance := func(h *head) (bool, error) {
		rec, ok, err := h.rd.Next()
		if err != nil || !ok {
			return false, err
		}
		r := &byteReader{buf: rec}
		h.seq = r.uvarint()
		_ = r.bytes() // key, not needed after partition merge
		b, err := g.ops.decode(r)
		if err == nil && r.err != nil {
			err = r.err
		}
		if err != nil {
			return false, err
		}
		h.bucket = b
		return true, nil
	}
	for _, run := range runs {
		h := &head{rd: heap.NewRunReader(pgr, run)}
		ok, err := advance(h)
		if err != nil {
			return nil, err
		}
		if ok {
			heads = append(heads, h)
		}
	}
	return func() (*B, bool, error) {
		if len(heads) == 0 {
			return nil, false, nil
		}
		best := 0
		for i := 1; i < len(heads); i++ {
			if heads[i].seq < heads[best].seq {
				best = i
			}
		}
		b := heads[best].bucket
		ok, err := advance(heads[best])
		if err != nil {
			return nil, false, err
		}
		if !ok {
			heads = append(heads[:best], heads[best+1:]...)
		}
		return b, true, nil
	}, nil
}
