package exec

// Spill infrastructure for the blocking operators (grouped aggregation,
// DISTINCT, external sort): a per-operator memory budget, a lazily created
// temp-file pager shared by the operator's runs, binary codecs for rows and
// annotations, and a partitioned hash table that moves itself to disk when
// the budget is exceeded.
//
// The budget bounds the operator's *transient* state — the in-memory hash
// table or sort batch — not the size of the input or the output: an operator
// whose working set exceeds the budget flushes it to uvarint-framed records
// in heap run files (internal/heap) on a pager.OpenTemp file, and finishes
// with a streaming merge whose memory cost is one page buffer per run.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"bdbms/internal/annotation"
	"bdbms/internal/heap"
	"bdbms/internal/pager"
	"bdbms/internal/value"
)

// ErrSpill categorizes I/O failures on a query's spill surface (creating
// the temp file, or reading/writing run pages in it — typically ENOSPC on
// a full disk). A query failing with errors.Is(err, ErrSpill) lost only
// its own scratch space: table data is untouched, the temp file has been
// removed, and the session remains fully usable.
var ErrSpill = errors.New("exec: query spill I/O failed")

// spillEvents counts spill flushes across all operators; the spill tests use
// it to prove a small budget actually pushed state to disk.
var spillEvents atomic.Int64

// defaultSpillBudget is the per-operator memory budget when the session does
// not set one: each blocking operator (group, distinct, sort, top-n input)
// may hold roughly this many bytes before spilling to its temp file.
const defaultSpillBudget = 8 << 20

// spillPartitions is the fan-out of a spilling hash table.
const spillPartitions = 16

// spillBudget returns the session's per-operator memory budget in bytes.
func (s *Session) spillBudget() int {
	if s.SpillBudget > 0 {
		return s.SpillBudget
	}
	return defaultSpillBudget
}

// openSpillPager creates the temp pager backing an operator's spill file.
// It is a variable so the fault-injection tests can swap in a pager that
// runs out of disk mid-query.
var openSpillPager = func() (pager.Pager, error) {
	return pager.OpenTemp("")
}

// spillFile lazily opens one temp pager per blocking operator. It must be
// closed when the operator's output is exhausted (the cursor's finish hook
// does it), which also deletes the backing file.
type spillFile struct {
	pgr pager.Pager
}

func (sf *spillFile) pager() (pager.Pager, error) {
	if sf.pgr == nil {
		p, err := openSpillPager()
		if err != nil {
			return nil, fmt.Errorf("%w: create temp file: %w", ErrSpill, err)
		}
		sf.pgr = spillPager{p}
	}
	return sf.pgr, nil
}

// spilled reports whether a temp file was actually created.
func (sf *spillFile) spilled() bool { return sf.pgr != nil }

func (sf *spillFile) Close() {
	if sf.pgr != nil {
		_ = sf.pgr.Close()
		sf.pgr = nil
	}
}

// spillPager wraps the temp-file pager so every I/O failure on the spill
// surface is categorized under ErrSpill: the run writers and readers built
// on it (heap.RunWriter/RunReader) propagate page errors verbatim, so
// wrapping here covers all of them at once. Close passes through to the
// embedded pager, which deletes the backing temp file.
type spillPager struct {
	pager.Pager
}

func (p spillPager) Allocate() (pager.PageID, error) {
	id, err := p.Pager.Allocate()
	if err != nil {
		return id, fmt.Errorf("%w: %w", ErrSpill, err)
	}
	return id, nil
}

func (p spillPager) Read(id pager.PageID) ([]byte, error) {
	data, err := p.Pager.Read(id)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrSpill, err)
	}
	return data, nil
}

func (p spillPager) Write(id pager.PageID, data []byte) error {
	if err := p.Pager.Write(id, data); err != nil {
		return fmt.Errorf("%w: %w", ErrSpill, err)
	}
	return nil
}

// --- binary codec ---------------------------------------------------------------------------

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }
func appendVarint(dst []byte, v int64) []byte   { return binary.AppendVarint(dst, v) }

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// byteReader decodes the codec above; the first error sticks.
type byteReader struct {
	buf []byte
	err error
}

func (r *byteReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("exec: corrupt spill record")
	}
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *byteReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *byteReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil || uint64(len(r.buf)) < n {
		r.fail()
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *byteReader) str() string { return string(r.bytes()) }

func (r *byteReader) byteVal() byte {
	if r.err != nil || len(r.buf) == 0 {
		r.fail()
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

func (r *byteReader) float() float64 {
	if r.err != nil || len(r.buf) < 8 {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.buf[:8]))
	r.buf = r.buf[8:]
	return v
}

func appendFloat(dst []byte, f float64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(f))
	return append(dst, b[:]...)
}

func (r *byteReader) row() value.Row {
	b := r.bytes()
	if r.err != nil {
		return nil
	}
	row, err := value.DecodeRow(b)
	if err != nil {
		r.err = err
		return nil
	}
	return row
}

func appendValueRow(dst []byte, row value.Row) []byte {
	return appendBytes(dst, value.EncodeRow(row))
}

func (r *byteReader) oneValue() value.Value {
	b := r.bytes()
	if r.err != nil {
		return value.Value{}
	}
	v, _, err := value.DecodeValue(b)
	if err != nil {
		r.err = err
		return value.Value{}
	}
	return v
}

func appendOneValue(dst []byte, v value.Value) []byte {
	return appendBytes(dst, v.Encode(nil))
}

// --- annotation codec -----------------------------------------------------------------------

// Spilled rows carry their full annotation payload, so a round trip through
// the temp file preserves propagation semantics exactly (IDs included, which
// is what keeps union-by-ID deduplication correct when spilled and resident
// rows merge).

func appendAnnotation(dst []byte, a *annotation.Annotation) []byte {
	dst = appendVarint(dst, a.ID)
	dst = appendString(dst, a.AnnTable)
	dst = appendString(dst, a.UserTable)
	dst = appendString(dst, a.Body)
	dst = appendString(dst, a.Author)
	dst = appendVarint(dst, a.CreatedAt.UnixNano())
	if a.Archived {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendVarint(dst, a.ArchivedAt.UnixNano())
	dst = appendUvarint(dst, uint64(len(a.Regions)))
	for _, rg := range a.Regions {
		dst = appendString(dst, rg.Table)
		dst = appendVarint(dst, int64(rg.ColStart))
		dst = appendVarint(dst, int64(rg.ColEnd))
		dst = appendVarint(dst, rg.RowStart)
		dst = appendVarint(dst, rg.RowEnd)
	}
	return dst
}

func (r *byteReader) annotationRec() *annotation.Annotation {
	a := &annotation.Annotation{
		ID:        r.varint(),
		AnnTable:  r.str(),
		UserTable: r.str(),
		Body:      r.str(),
		Author:    r.str(),
	}
	a.CreatedAt = time.Unix(0, r.varint()).UTC()
	a.Archived = r.byteVal() != 0
	a.ArchivedAt = time.Unix(0, r.varint()).UTC()
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	a.Regions = make([]annotation.Region, 0, n)
	for i := uint64(0); i < n; i++ {
		a.Regions = append(a.Regions, annotation.Region{
			Table:    r.str(),
			ColStart: int(r.varint()),
			ColEnd:   int(r.varint()),
			RowStart: r.varint(),
			RowEnd:   r.varint(),
		})
	}
	return a
}

func appendAnnCells(dst []byte, anns [][]*annotation.Annotation) []byte {
	dst = appendUvarint(dst, uint64(len(anns)))
	for _, cell := range anns {
		dst = appendUvarint(dst, uint64(len(cell)))
		for _, a := range cell {
			dst = appendAnnotation(dst, a)
		}
	}
	return dst
}

func (r *byteReader) annCells() [][]*annotation.Annotation {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	anns := make([][]*annotation.Annotation, n)
	for c := uint64(0); c < n; c++ {
		m := r.uvarint()
		if r.err != nil {
			return nil
		}
		for i := uint64(0); i < m; i++ {
			a := r.annotationRec()
			if r.err != nil {
				return nil
			}
			anns[c] = append(anns[c], a)
		}
	}
	return anns
}

func appendARowRec(dst []byte, row ARow) []byte {
	dst = appendValueRow(dst, row.Values)
	return appendAnnCells(dst, row.Anns)
}

func (r *byteReader) aRow() ARow {
	return ARow{Values: r.row(), Anns: r.annCells()}
}

// --- size estimation ------------------------------------------------------------------------

// Budget accounting is approximate: it only needs to track the working set
// closely enough that a small budget forces spilling and the default never
// does on ordinary queries.

func sizeOfValues(vals value.Row) int {
	n := 24 + len(vals)*24
	for _, v := range vals {
		if t := v.Type(); t == value.Text || t == value.Sequence {
			n += len(v.Text())
		}
	}
	return n
}

func sizeOfAnnCells(anns [][]*annotation.Annotation) int {
	n := 24 + len(anns)*24
	for _, cell := range anns {
		n += len(cell) * 8 // shared pointers
	}
	return n
}

func sizeOfARow(row ARow) int {
	return sizeOfValues(row.Values) + sizeOfAnnCells(row.Anns)
}

// --- spillable hash table -------------------------------------------------------------------

// grouperOps parameterizes spillGrouper over its bucket type: grouped
// aggregation buckets (representative row + accumulators) and DISTINCT
// buckets (one output row) share the partition/flush/merge machinery.
type grouperOps[B any] struct {
	// size estimates the resident bytes of a bucket.
	size func(b *B) int
	// encode serializes a bucket into a spill record.
	encode func(dst []byte, b *B) []byte
	// decode deserializes a spill record.
	decode func(r *byteReader) (*B, error)
	// merge folds src (observed later) into dst (observed earlier).
	merge func(dst, src *B) error
}

type groupEntry[B any] struct {
	seq    uint64
	bucket *B
}

// spillGrouper is a hash table keyed by string that preserves first-seen
// order and bounds its resident size: when the budget is exceeded the
// resident entries are flushed to hash partitions on a temp file and the
// table is cleared. finish merges each partition back together and streams
// the entries in global first-seen order (every entry remembers the sequence
// number of its first observation).
type spillGrouper[B any] struct {
	ops    grouperOps[B]
	budget int
	sf     *spillFile

	m       map[string]*groupEntry[B]
	order   []string
	used    int
	nextSeq uint64

	parts   []*heap.RunWriter
	spilled bool
	encBuf  []byte
}

func newSpillGrouper[B any](ops grouperOps[B], budget int, sf *spillFile) *spillGrouper[B] {
	return &spillGrouper[B]{ops: ops, budget: budget, sf: sf, m: map[string]*groupEntry[B]{}}
}

// observe returns the resident bucket for key (fresh reports whether it was
// just inserted, at the next sequence number). A key may be observed fresh
// again after a spill flushed its earlier bucket — the finish phase merges
// the flushed generations back together by key.
func (g *spillGrouper[B]) observe(key string, fresh func() (*B, error)) (*B, bool, error) {
	if e, ok := g.m[key]; ok {
		return e.bucket, false, nil
	}
	b, err := fresh()
	if err != nil {
		return nil, false, err
	}
	g.m[key] = &groupEntry[B]{seq: g.nextSeq, bucket: b}
	g.nextSeq++
	g.order = append(g.order, key)
	g.used += len(key) + g.ops.size(b) + 48
	return b, true, nil
}

// grow records extra resident bytes added to an existing bucket.
func (g *spillGrouper[B]) grow(n int) { g.used += n }

// maybeSpill flushes the resident table to the hash partitions when the
// budget is exceeded.
func (g *spillGrouper[B]) maybeSpill() error {
	if g.used <= g.budget || len(g.m) == 0 {
		return nil
	}
	return g.spill()
}

func partitionOf(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % spillPartitions)
}

func (g *spillGrouper[B]) spill() error {
	pgr, err := g.sf.pager()
	if err != nil {
		return err
	}
	if g.parts == nil {
		g.parts = make([]*heap.RunWriter, spillPartitions)
		for i := range g.parts {
			g.parts[i] = heap.NewRunWriter(pgr)
		}
	}
	g.spilled = true
	spillEvents.Add(1)
	for _, key := range g.order {
		e := g.m[key]
		g.encBuf = g.encBuf[:0]
		g.encBuf = appendUvarint(g.encBuf, e.seq)
		g.encBuf = appendString(g.encBuf, key)
		g.encBuf = g.ops.encode(g.encBuf, e.bucket)
		if err := g.parts[partitionOf(key)].Append(g.encBuf); err != nil {
			return err
		}
	}
	g.m = map[string]*groupEntry[B]{}
	g.order = g.order[:0]
	g.used = 0
	return nil
}

// finish seals the table and returns a pull iterator over the entries in
// global first-seen order. When nothing was spilled this iterates the
// resident table; otherwise each partition is re-merged in memory (bounded
// by groups-per-partition, 1/16th of the distinct keys on average), written
// back as a seq-ordered run, and the partition runs are streamed through a
// k-way merge whose resident cost is one page plus one decoded bucket per
// partition.
func (g *spillGrouper[B]) finish() (func() (*B, bool, error), error) {
	if !g.spilled {
		i := 0
		return func() (*B, bool, error) {
			if i >= len(g.order) {
				return nil, false, nil
			}
			b := g.m[g.order[i]].bucket
			i++
			return b, true, nil
		}, nil
	}
	if err := g.spill(); err != nil { // flush the residual table
		return nil, err
	}
	pgr, err := g.sf.pager()
	if err != nil {
		return nil, err
	}
	merged := make([]heap.Run, 0, len(g.parts))
	for _, w := range g.parts {
		run, err := w.Finish()
		if err != nil {
			return nil, err
		}
		out, err := g.mergePartition(pgr, run)
		if err != nil {
			return nil, err
		}
		merged = append(merged, out)
	}
	g.parts = nil
	return g.mergeBySeq(pgr, merged)
}

// mergePartition folds one partition's records (several per key when flushes
// interleaved) into single entries, orders them by first-seen seq and writes
// them back as a new run.
func (g *spillGrouper[B]) mergePartition(pgr pager.Pager, run heap.Run) (heap.Run, error) {
	type ent struct {
		seq    uint64
		key    string
		bucket *B
	}
	byKey := map[string]*ent{}
	var order []*ent
	rd := heap.NewRunReader(pgr, run)
	for {
		rec, ok, err := rd.Next()
		if err != nil {
			return heap.Run{}, err
		}
		if !ok {
			break
		}
		r := &byteReader{buf: rec}
		seq := r.uvarint()
		key := r.str()
		b, err := g.ops.decode(r)
		if err == nil && r.err != nil {
			err = r.err
		}
		if err != nil {
			return heap.Run{}, err
		}
		if e, ok := byKey[key]; ok {
			// Records of one key arrive in flush order, i.e. ascending seq:
			// the resident entry is the earlier observation.
			if err := g.ops.merge(e.bucket, b); err != nil {
				return heap.Run{}, err
			}
			continue
		}
		e := &ent{seq: seq, key: key, bucket: b}
		byKey[key] = e
		order = append(order, e)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].seq < order[j].seq })
	w := heap.NewRunWriter(pgr)
	for _, e := range order {
		g.encBuf = g.encBuf[:0]
		g.encBuf = appendUvarint(g.encBuf, e.seq)
		g.encBuf = appendString(g.encBuf, e.key)
		g.encBuf = g.ops.encode(g.encBuf, e.bucket)
		if err := w.Append(g.encBuf); err != nil {
			return heap.Run{}, err
		}
	}
	return w.Finish()
}

// mergeBySeq streams the seq-ordered partition runs in global seq order.
func (g *spillGrouper[B]) mergeBySeq(pgr pager.Pager, runs []heap.Run) (func() (*B, bool, error), error) {
	type head struct {
		seq    uint64
		bucket *B
		rd     *heap.RunReader
	}
	var heads []*head
	advance := func(h *head) (bool, error) {
		rec, ok, err := h.rd.Next()
		if err != nil || !ok {
			return false, err
		}
		r := &byteReader{buf: rec}
		h.seq = r.uvarint()
		_ = r.bytes() // key, not needed after partition merge
		b, err := g.ops.decode(r)
		if err == nil && r.err != nil {
			err = r.err
		}
		if err != nil {
			return false, err
		}
		h.bucket = b
		return true, nil
	}
	for _, run := range runs {
		h := &head{rd: heap.NewRunReader(pgr, run)}
		ok, err := advance(h)
		if err != nil {
			return nil, err
		}
		if ok {
			heads = append(heads, h)
		}
	}
	return func() (*B, bool, error) {
		if len(heads) == 0 {
			return nil, false, nil
		}
		best := 0
		for i := 1; i < len(heads); i++ {
			if heads[i].seq < heads[best].seq {
				best = i
			}
		}
		b := heads[best].bucket
		ok, err := advance(heads[best])
		if err != nil {
			return nil, false, err
		}
		if !ok {
			heads = append(heads[:best], heads[best+1:]...)
		}
		return b, true, nil
	}, nil
}
