package exec

// Transactional workload fuzzing, extending the SQL-equivalence fuzzer:
// a seeded generator interleaves BEGIN / SAVEPOINT / ROLLBACK [TO] / COMMIT
// with DML (some statements deliberately invalid), executes the stream
// against a real session, and mirrors ONLY the statements that actually
// committed — auto-commit statements that succeeded, and the surviving
// statements of committed transactions (savepoint rollbacks excluded) —
// onto a step-indexed oracle session that knows nothing about transactions.
// After every commit point the two databases must agree exactly; any
// divergence means a rollback leaked or a commit lost writes, and the full
// reproducing statement log is printed.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// txFuzzState mirrors the transaction semantics on the generator side: the
// statements that will reach the oracle when (and if) the open transaction
// commits.
type txFuzzState struct {
	inTx  bool
	txBuf []string
	saves []txSavepoint
}

func (st *txFuzzState) rollbackTo(name string) bool {
	for i := len(st.saves) - 1; i >= 0; i-- {
		if st.saves[i].name == name {
			st.txBuf = st.txBuf[:st.saves[i].mark]
			st.saves = st.saves[:i+1]
			return true
		}
	}
	return false
}

// genTxDML produces one DML statement over table T. Collisions (duplicate
// primary keys) are likely by construction, so some statements fail — the
// point: a failed statement must contribute nothing, committed or not.
func genTxDML(r *rand.Rand) string {
	switch r.Intn(10) {
	case 0, 1, 2, 3: // INSERT, sometimes multi-row (fails atomically on a dup)
		rows := 1 + r.Intn(3)
		var vals []string
		for i := 0; i < rows; i++ {
			vals = append(vals, fmt.Sprintf("(%d, %d, '%s')", r.Intn(30), r.Intn(100), pick(r, fuzzTexts)))
		}
		return `INSERT INTO T VALUES ` + strings.Join(vals, ", ")
	case 4, 5, 6: // UPDATE a value column over a key range
		return fmt.Sprintf(`UPDATE T SET V = V + %d WHERE K >= %d AND K < %d`,
			1+r.Intn(9), r.Intn(20), 10+r.Intn(25))
	case 7: // UPDATE the primary key itself (may collide)
		return fmt.Sprintf(`UPDATE T SET K = K + %d WHERE K = %d`, 1+r.Intn(5), r.Intn(30))
	case 8: // UPDATE the text column
		return fmt.Sprintf(`UPDATE T SET S = '%s' WHERE V > %d`, pick(r, fuzzTexts), r.Intn(100))
	default: // DELETE
		return fmt.Sprintf(`DELETE FROM T WHERE K = %d OR V < %d`, r.Intn(30), r.Intn(20))
	}
}

// canonTable renders T in a row-ID-independent canonical form (transactions
// burn RowIDs that the oracle never sees, so only logical content may be
// compared).
func canonTable(t *testing.T, s *Session) string {
	t.Helper()
	res, err := s.Exec(`SELECT K, V, S FROM T ORDER BY K, V, S`)
	if err != nil {
		t.Fatalf("canon: %v", err)
	}
	var b strings.Builder
	for _, row := range res.Rows {
		for i, v := range row.Values {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestTxWorkloadFuzz(t *testing.T) {
	const seeds = 6
	const ops = 150
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			real := newLockedSession(t)
			oracle := newSession(t)
			setup := `CREATE TABLE T (K INT NOT NULL PRIMARY KEY, V INT, S TEXT)`
			mustExec(t, real, setup)
			mustExec(t, oracle, setup)

			var log []string // every statement issued, for the repro script
			var committedLog []string
			st := &txFuzzState{}
			spNames := []string{"sa", "sb", "sc"}

			issue := func(sql string) (ok bool) {
				log = append(log, sql)
				_, err := real.Exec(sql)
				return err == nil
			}
			applyToOracle := func(stmts []string) {
				for _, sql := range stmts {
					committedLog = append(committedLog, sql)
					if _, err := oracle.Exec(sql); err != nil {
						t.Fatalf("oracle rejected committed statement %q: %v\nfull log:\n%s\ncommitted:\n%s",
							sql, err, strings.Join(log, ";\n"), strings.Join(committedLog, ";\n"))
					}
				}
			}
			check := func(when string) {
				t.Helper()
				if got, want := canonTable(t, real), canonTable(t, oracle); got != want {
					t.Fatalf("divergence %s:\n real:\n%s\n oracle:\n%s\nfull log:\n%s\ncommitted:\n%s",
						when, got, want, strings.Join(log, ";\n"), strings.Join(committedLog, ";\n"))
				}
			}

			for i := 0; i < ops; i++ {
				if !st.inTx {
					switch r.Intn(10) {
					case 0, 1, 2:
						if issue(`BEGIN`) {
							st.inTx = true
						} else {
							t.Fatalf("BEGIN failed\nlog:\n%s", strings.Join(log, ";\n"))
						}
					case 3: // misuse: commit/rollback without a transaction
						if issue(pick(r, []string{`COMMIT`, `ROLLBACK`, `SAVEPOINT sx`})) {
							t.Fatalf("tx control outside tx succeeded\nlog:\n%s", strings.Join(log, ";\n"))
						}
					default:
						sql := genTxDML(r)
						if issue(sql) {
							applyToOracle([]string{sql})
						}
						check("after auto-commit statement")
					}
					continue
				}
				switch r.Intn(12) {
				case 0, 1: // COMMIT
					if !issue(`COMMIT`) {
						t.Fatalf("COMMIT failed\nlog:\n%s", strings.Join(log, ";\n"))
					}
					applyToOracle(st.txBuf)
					st.inTx, st.txBuf, st.saves = false, nil, nil
					check("after COMMIT")
				case 2: // ROLLBACK
					if !issue(`ROLLBACK`) {
						t.Fatalf("ROLLBACK failed\nlog:\n%s", strings.Join(log, ";\n"))
					}
					st.inTx, st.txBuf, st.saves = false, nil, nil
					check("after ROLLBACK")
				case 3, 4: // SAVEPOINT (names repeat, shadowing earlier ones)
					name := pick(r, spNames)
					if !issue(`SAVEPOINT ` + name) {
						t.Fatalf("SAVEPOINT failed\nlog:\n%s", strings.Join(log, ";\n"))
					}
					st.saves = append(st.saves, txSavepoint{name: name, mark: len(st.txBuf)})
				case 5: // ROLLBACK TO SAVEPOINT (sometimes unknown)
					name := pick(r, append(spNames, "missing"))
					ok := issue(`ROLLBACK TO SAVEPOINT ` + name)
					if mirrored := st.rollbackTo(name); mirrored != ok {
						t.Fatalf("ROLLBACK TO %s: real ok=%v, mirror ok=%v\nlog:\n%s",
							name, ok, mirrored, strings.Join(log, ";\n"))
					}
				case 6: // misuse: nested BEGIN must fail and change nothing
					if issue(`BEGIN`) {
						t.Fatalf("nested BEGIN succeeded\nlog:\n%s", strings.Join(log, ";\n"))
					}
				default:
					sql := genTxDML(r)
					if issue(sql) {
						st.txBuf = append(st.txBuf, sql)
					}
				}
			}
			// Drain: a transaction still open at the end commits or rolls
			// back at the coin's pleasure.
			if st.inTx {
				if r.Intn(2) == 0 {
					if !issue(`COMMIT`) {
						t.Fatal("final COMMIT failed")
					}
					applyToOracle(st.txBuf)
				} else {
					if !issue(`ROLLBACK`) {
						t.Fatal("final ROLLBACK failed")
					}
				}
			}
			check("at end of workload")
			if len(committedLog) == 0 {
				t.Error("no statement ever committed; fuzz case is vacuous")
			}
		})
	}
}
