package exec

// Transactional workload fuzzing, extending the SQL-equivalence fuzzer:
// a seeded generator interleaves BEGIN / SAVEPOINT / ROLLBACK [TO] / COMMIT
// with DML (some statements deliberately invalid), executes the stream
// against a real session, and mirrors ONLY the statements that actually
// committed — auto-commit statements that succeeded, and the surviving
// statements of committed transactions (savepoint rollbacks excluded) —
// onto a step-indexed oracle session that knows nothing about transactions.
// After every commit point the two databases must agree exactly; any
// divergence means a rollback leaked or a commit lost writes, and the full
// reproducing statement log is printed.
//
// 64 workers run their workloads concurrently against ONE shared engine —
// each on its own table with a private oracle, so the comparison stays
// deterministic while the workers contend on the latch manager, the WAL
// scope and the MVCC machinery. Run under -race by CI.

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"bdbms/internal/annotation"
	"bdbms/internal/authz"
	"bdbms/internal/dependency"
	"bdbms/internal/provenance"
	"bdbms/internal/storage"
)

// txFuzzState mirrors the transaction semantics on the generator side: the
// statements that will reach the oracle when (and if) the open transaction
// commits.
type txFuzzState struct {
	inTx  bool
	txBuf []string
	saves []txSavepoint
}

func (st *txFuzzState) rollbackTo(name string) bool {
	for i := len(st.saves) - 1; i >= 0; i-- {
		if st.saves[i].name == name {
			st.txBuf = st.txBuf[:st.saves[i].mark]
			st.saves = st.saves[:i+1]
			return true
		}
	}
	return false
}

// genTxDML produces one DML statement over the worker's table. Collisions
// (duplicate primary keys) are likely by construction, so some statements
// fail — the point: a failed statement must contribute nothing, committed or
// not.
func genTxDML(r *rand.Rand, tbl string) string {
	switch r.Intn(10) {
	case 0, 1, 2, 3: // INSERT, sometimes multi-row (fails atomically on a dup)
		rows := 1 + r.Intn(3)
		var vals []string
		for i := 0; i < rows; i++ {
			vals = append(vals, fmt.Sprintf("(%d, %d, '%s')", r.Intn(30), r.Intn(100), pick(r, fuzzTexts)))
		}
		return `INSERT INTO ` + tbl + ` VALUES ` + strings.Join(vals, ", ")
	case 4, 5, 6: // UPDATE a value column over a key range
		return fmt.Sprintf(`UPDATE %s SET V = V + %d WHERE K >= %d AND K < %d`,
			tbl, 1+r.Intn(9), r.Intn(20), 10+r.Intn(25))
	case 7: // UPDATE the primary key itself (may collide)
		return fmt.Sprintf(`UPDATE %s SET K = K + %d WHERE K = %d`, tbl, 1+r.Intn(5), r.Intn(30))
	case 8: // UPDATE the text column
		return fmt.Sprintf(`UPDATE %s SET S = '%s' WHERE V > %d`, tbl, pick(r, fuzzTexts), r.Intn(100))
	default: // DELETE
		return fmt.Sprintf(`DELETE FROM %s WHERE K = %d OR V < %d`, tbl, r.Intn(30), r.Intn(20))
	}
}

// canonFuzzTable renders the table in a row-ID-independent canonical form
// (transactions burn RowIDs that the oracle never sees, so only logical
// content may be compared).
func canonFuzzTable(s *Session, tbl string) (string, error) {
	res, err := s.Exec(`SELECT K, V, S FROM ` + tbl + ` ORDER BY K, V, S`)
	if err != nil {
		return "", fmt.Errorf("canon %s: %w", tbl, err)
	}
	var b strings.Builder
	for _, row := range res.Rows {
		for i, v := range row.Values {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// newOracleSession builds a private single-user session on its own fresh
// engine — the transaction-oblivious mirror each fuzz worker compares
// against. (newSession without the *testing.T, usable from worker
// goroutines.)
func newOracleSession() *Session {
	eng := storage.NewMemoryEngine()
	ann := annotation.NewManager(eng.Catalog(), engineResolver{eng: eng})
	return &Session{
		Eng:  eng,
		Ann:  ann,
		Prov: provenance.NewManager(ann),
		Dep:  dependency.NewManager(eng),
		Auth: authz.NewManager(eng),
		User: "oracle",
	}
}

// runTxFuzzWorker drives one seeded workload on its own table of the shared
// engine, mirroring commits onto a private oracle. Any divergence is
// returned as an error carrying the full reproducing statement log.
func runTxFuzzWorker(seed int64, shared *Session, ops int) error {
	r := rand.New(rand.NewSource(seed))
	real := sameEngineSession(shared, fmt.Sprintf("fuzz%d", seed))
	oracle := newOracleSession()
	tbl := fmt.Sprintf("T%d", seed)
	setup := fmt.Sprintf(`CREATE TABLE %s (K INT NOT NULL PRIMARY KEY, V INT, S TEXT)`, tbl)
	if _, err := real.Exec(setup); err != nil {
		return err
	}
	if _, err := oracle.Exec(setup); err != nil {
		return err
	}

	var log []string // every statement issued, for the repro script
	var committedLog []string
	st := &txFuzzState{}
	spNames := []string{"sa", "sb", "sc"}

	issue := func(sql string) (ok bool) {
		log = append(log, sql)
		_, err := real.Exec(sql)
		return err == nil
	}
	fatalf := func(format string, args ...any) error {
		return fmt.Errorf("worker %d: %s\nfull log:\n%s\ncommitted:\n%s",
			seed, fmt.Sprintf(format, args...), strings.Join(log, ";\n"), strings.Join(committedLog, ";\n"))
	}
	applyToOracle := func(stmts []string) error {
		for _, sql := range stmts {
			committedLog = append(committedLog, sql)
			if _, err := oracle.Exec(sql); err != nil {
				return fatalf("oracle rejected committed statement %q: %v", sql, err)
			}
		}
		return nil
	}
	check := func(when string) error {
		got, err := canonFuzzTable(real, tbl)
		if err != nil {
			return fatalf("%v", err)
		}
		want, err := canonFuzzTable(oracle, tbl)
		if err != nil {
			return fatalf("%v", err)
		}
		if got != want {
			return fatalf("divergence %s:\n real:\n%s\n oracle:\n%s", when, got, want)
		}
		return nil
	}

	for i := 0; i < ops; i++ {
		if !st.inTx {
			switch r.Intn(10) {
			case 0, 1, 2:
				if issue(`BEGIN`) {
					st.inTx = true
				} else {
					return fatalf("BEGIN failed")
				}
			case 3: // misuse: commit/rollback without a transaction
				if issue(pick(r, []string{`COMMIT`, `ROLLBACK`, `SAVEPOINT sx`})) {
					return fatalf("tx control outside tx succeeded")
				}
			default:
				sql := genTxDML(r, tbl)
				if issue(sql) {
					if err := applyToOracle([]string{sql}); err != nil {
						return err
					}
				}
				if err := check("after auto-commit statement"); err != nil {
					return err
				}
			}
			continue
		}
		switch r.Intn(12) {
		case 0, 1: // COMMIT
			if !issue(`COMMIT`) {
				return fatalf("COMMIT failed")
			}
			if err := applyToOracle(st.txBuf); err != nil {
				return err
			}
			st.inTx, st.txBuf, st.saves = false, nil, nil
			if err := check("after COMMIT"); err != nil {
				return err
			}
		case 2: // ROLLBACK
			if !issue(`ROLLBACK`) {
				return fatalf("ROLLBACK failed")
			}
			st.inTx, st.txBuf, st.saves = false, nil, nil
			if err := check("after ROLLBACK"); err != nil {
				return err
			}
		case 3, 4: // SAVEPOINT (names repeat, shadowing earlier ones)
			name := pick(r, spNames)
			if !issue(`SAVEPOINT ` + name) {
				return fatalf("SAVEPOINT failed")
			}
			st.saves = append(st.saves, txSavepoint{name: name, mark: len(st.txBuf)})
		case 5: // ROLLBACK TO SAVEPOINT (sometimes unknown)
			name := pick(r, append(spNames, "missing"))
			ok := issue(`ROLLBACK TO SAVEPOINT ` + name)
			if mirrored := st.rollbackTo(name); mirrored != ok {
				return fatalf("ROLLBACK TO %s: real ok=%v, mirror ok=%v", name, ok, mirrored)
			}
		case 6: // misuse: nested BEGIN must fail and change nothing
			if issue(`BEGIN`) {
				return fatalf("nested BEGIN succeeded")
			}
		default:
			sql := genTxDML(r, tbl)
			if issue(sql) {
				st.txBuf = append(st.txBuf, sql)
			}
		}
	}
	// Drain: a transaction still open at the end commits or rolls back at
	// the coin's pleasure.
	if st.inTx {
		if r.Intn(2) == 0 {
			if !issue(`COMMIT`) {
				return fatalf("final COMMIT failed")
			}
			if err := applyToOracle(st.txBuf); err != nil {
				return err
			}
		} else {
			if !issue(`ROLLBACK`) {
				return fatalf("final ROLLBACK failed")
			}
		}
	}
	if err := check("at end of workload"); err != nil {
		return err
	}
	if len(committedLog) == 0 {
		return fmt.Errorf("worker %d: no statement ever committed; fuzz case is vacuous", seed)
	}
	return nil
}

func TestTxWorkloadFuzz(t *testing.T) {
	const workers = 64
	const ops = 60
	shared := newSession(t)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs <- runTxFuzzWorker(int64(g+1), shared, ops)
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
