package exec

// Typed filter kernels for the vectorized scan (batch.go). A kernel is one
// pushed predicate of the shape `column op constant` specialized to the
// column's physical vector: it narrows a selection vector in a tight loop
// over int64/float64/string payloads instead of boxing each row into
// value.Value and walking the expression tree.
//
// Kernel semantics replicate evalBinary + value.Compare bit for bit:
//
//   - NULL rows never match (evalBinary resolves any comparison with NULL to
//     false before Compare runs);
//   - a NULL constant matches nothing — the whole scan short-circuits
//     (kernelNever);
//   - numeric comparisons go through float64 even for INT columns, exactly
//     like Compare (including its imprecision above 2^53 — the fuzzer holds
//     the batched and row paths to identical answers);
//   - text comparisons use strings.Compare on the raw payload.
//
// Anything a kernel cannot express with those exact semantics — OR trees,
// LIKE, arithmetic over columns, incomparable type classes (which must keep
// raising their row-path error) — stays a row-wise predicate on the batch.

import (
	"strings"

	"bdbms/internal/catalog"
	"bdbms/internal/storage"
	"bdbms/internal/value"
)

// kernelPred is one compiled `column op constant` filter. The operator is
// pre-split into the comparison outcomes that match: op "<=" sets lt and eq.
type kernelPred struct {
	slot       int // local column index within the source
	lt, eq, gt bool
	f          float64 // numeric constant (ColInt/ColFloat columns)
	s          string  // string constant (ColText columns)
}

type kernelClass uint8

const (
	// kernelNo: evaluate the predicate row-wise on the batch.
	kernelNo kernelClass = iota
	// kernelYes: run as a typed kernel.
	kernelYes
	// kernelNever: the predicate can never match any row (NULL constant).
	kernelNever
)

// compileKernel classifies one pushed predicate. It returns kernelYes with a
// compiled kernel, kernelNever when the comparison constant is NULL, or
// kernelNo when the predicate must run row-wise to preserve semantics.
func compileKernel(s *Session, p compiledPred, src *sourcePlan, schema *catalog.Schema, params value.Row) (kernelPred, kernelClass) {
	colExpr, constExpr, op, ok := comparisonParts(p.expr)
	if !ok {
		return kernelPred{}, kernelNo
	}
	slot, ok := p.slots[colExpr]
	if !ok {
		return kernelPred{}, kernelNo
	}
	local := slot - src.offset
	if local < 0 || local >= len(schema.Columns) {
		return kernelPred{}, kernelNo
	}
	cv, err := s.evalConst(constExpr, params)
	if err != nil {
		// The row path fails per row with the same error; let it.
		return kernelPred{}, kernelNo
	}
	if cv.IsNull() {
		return kernelPred{}, kernelNever
	}
	k := kernelPred{slot: local}
	switch op {
	case "=":
		k.eq = true
	case "<":
		k.lt = true
	case "<=":
		k.lt, k.eq = true, true
	case ">":
		k.gt = true
	case ">=":
		k.gt, k.eq = true, true
	default:
		return kernelPred{}, kernelNo
	}
	ct := schema.Columns[local].Type
	switch {
	case (ct == value.Int || ct == value.Float) && (cv.Type() == value.Int || cv.Type() == value.Float):
		k.f = cv.Float()
	case (ct == value.Text || ct == value.Sequence) && (cv.Type() == value.Text || cv.Type() == value.Sequence):
		k.s = cv.Text()
	default:
		// Incomparable type classes error row by row; BOOL/TIMESTAMP columns
		// are boxed anyway. Either way, row-wise.
		return kernelPred{}, kernelNo
	}
	return k, kernelYes
}

// matchCmp folds a three-way comparison outcome through the operator flags.
func (k *kernelPred) matchCmp(c int) bool {
	switch {
	case c < 0:
		return k.lt
	case c > 0:
		return k.gt
	default:
		return k.eq
	}
}

// applyKernel narrows sel to the rows of v that satisfy k, writing survivors
// into out (len 0, adequate cap) and returning it.
func applyKernel(v *bvec, k *kernelPred, sel, out []int32) []int32 {
	switch v.kind {
	case storage.ColInt:
		return filterInts(v.ints, v.valid, k, sel, out)
	case storage.ColFloat:
		return filterFloats(v.flts, v.valid, k, sel, out)
	case storage.ColText:
		if v.dict != nil {
			return filterDict(v, k, sel, out)
		}
		return filterStrs(v.strs, v.valid, k, sel, out)
	default:
		// compileKernel never targets ColOther vectors.
		return out
	}
}

func filterInts(ints []int64, valid []byte, k *kernelPred, sel, out []int32) []int32 {
	c := k.f
	for _, i := range sel {
		if valid != nil && valid[i] == 0 {
			continue
		}
		x := float64(ints[i])
		var m bool
		switch {
		case x < c:
			m = k.lt
		case x > c:
			m = k.gt
		default:
			m = k.eq
		}
		if m {
			out = append(out, i)
		}
	}
	return out
}

func filterFloats(flts []float64, valid []byte, k *kernelPred, sel, out []int32) []int32 {
	c := k.f
	for _, i := range sel {
		if valid != nil && valid[i] == 0 {
			continue
		}
		x := flts[i]
		var m bool
		switch {
		case x < c:
			m = k.lt
		case x > c:
			m = k.gt
		default:
			m = k.eq
		}
		if m {
			out = append(out, i)
		}
	}
	return out
}

func filterStrs(strs []string, valid []byte, k *kernelPred, sel, out []int32) []int32 {
	for _, i := range sel {
		if valid != nil && valid[i] == 0 {
			continue
		}
		if k.matchCmp(strings.Compare(strs[i], k.s)) {
			out = append(out, i)
		}
	}
	return out
}

// filterDict compares each distinct dictionary entry once, then scans the
// code vector against the precomputed verdicts — the payoff of dictionary
// coding on low-cardinality columns.
func filterDict(v *bvec, k *kernelPred, sel, out []int32) []int32 {
	var keep [maxKernelDict]bool
	for code, s := range v.dict {
		keep[code] = k.matchCmp(strings.Compare(s, k.s))
	}
	codes, valid := v.codes, v.valid
	for _, i := range sel {
		if valid != nil && valid[i] == 0 {
			continue
		}
		if keep[codes[i]] {
			out = append(out, i)
		}
	}
	return out
}

// maxKernelDict mirrors storage's 255-entry dictionary bound (codes fit one
// byte, so 256 verdict slots always suffice).
const maxKernelDict = 256
