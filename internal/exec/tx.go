package exec

// Multi-statement ACID transactions.
//
// A transaction serializes against other writers by strict two-phase
// locking over per-table latches: each statement latches the tables it
// touches (reads included) as it runs, and everything is held until
// Commit/Rollback. Its first mutating statement additionally latches the
// shared WAL scope and arms the transaction's WAL frame; from then on no
// other writer runs until the transaction ends. Bare SELECT cursors are NOT
// blocked by any of this — they read MVCC snapshots of the last committed
// state (see internal/storage/mvcc.go), so a transaction's writes are
// invisible to them until COMMIT by construction. Atomicity is two-layered:
//
//   - In memory, every applied mutation pushes a compensating closure onto
//     the transaction's undo log (internal/undo); ROLLBACK — explicit, via
//     a canceled context, or the implicit statement-level rollback when a
//     statement fails mid-transaction — runs the closures in reverse.
//   - In the WAL, the transaction's records are framed by TxBegin/TxCommit
//     (TxAbort on rollback); recovery redoes only committed frames and
//     undoes, from the before-images the records carry, any effect of an
//     uncommitted frame that reached disk through a buffer eviction.
//
// Auto-commit statements run inside an implicit transaction built from the
// same two pieces (see execAutoCommit in cursor.go), so a mid-statement
// error or context cancellation rolls the statement back instead of leaving
// half-applied state — multi-row INSERTs, UPDATE cascades and annotation
// side effects included.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"

	"bdbms/internal/sqlparse"
	"bdbms/internal/storage"
	"bdbms/internal/undo"
	"bdbms/internal/value"
	"bdbms/internal/wal"
)

// Transaction errors.
var (
	// ErrTxDone is returned by operations on a transaction that was already
	// committed or rolled back (including auto-rollback via its context).
	ErrTxDone = errors.New("exec: transaction has already been committed or rolled back")
	// ErrTxOpen is returned by Begin when the session already has an open
	// transaction; bdbms transactions do not nest.
	ErrTxOpen = errors.New("exec: a transaction is already open on this session")
	// ErrNoTx is returned by COMMIT/ROLLBACK/SAVEPOINT statements outside a
	// transaction.
	ErrNoTx = errors.New("exec: no transaction is open")
	// ErrNoSavepoint is returned by ROLLBACK TO SAVEPOINT with an unknown
	// (or already released) savepoint name.
	ErrNoSavepoint = errors.New("exec: no such savepoint")
)

// txSavepoint is one live savepoint: a name plus the undo-log length at its
// creation.
type txSavepoint struct {
	name string
	mark int
}

// Tx is an open multi-statement transaction. It is created by
// Session.Begin (or a BEGIN statement) and ended exactly once by Commit or
// Rollback; canceling the Begin context rolls an abandoned transaction back
// automatically, releasing every latch it holds.
//
// A Tx is safe for sequential use from any goroutine, but its statements
// serialize on an internal mutex; cursors returned by Query must be
// iterated before the transaction ends (ending it invalidates them with
// ErrTxDone).
type Tx struct {
	sess *Session

	mu      sync.Mutex
	done    bool
	endErr  error // why the transaction ended, when not a plain Commit
	u       *undo.Log
	saves   []txSavepoint
	cursors []*Rows
	stop    chan struct{} // closed when the transaction ends
	// locker accumulates the per-table latches of every statement, held
	// until the transaction ends (strict two-phase locking).
	locker *storage.Locker
	// mark is the transaction's MVCC write frame, non-nil once the WAL
	// frame is armed (first mutating statement); snapshots taken while it
	// is active keep seeing the pre-transaction row images.
	mark *storage.WriteMark
}

// Begin opens an explicit transaction on the session. Begin itself takes no
// latches and writes nothing: latches accrue per statement, and the WAL
// frame is armed by the first mutating statement — so a transaction that
// only reads neither blocks writers on other tables nor leaves a trace in
// the log. The context governs the whole transaction: once it is canceled
// the transaction is rolled back — even if abandoned — so a forgotten Tx
// cannot hold its latches forever. Transactions do not nest; a second Begin
// fails with ErrTxOpen.
func (s *Session) Begin(ctx context.Context) (*Tx, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tx := &Tx{
		sess:   s,
		u:      undo.New(),
		stop:   make(chan struct{}),
		locker: s.Eng.Locks().NewLocker(),
	}
	// Publish the reservation with tx.mu held so a statement racing Begin
	// on the same session blocks until the transaction is actually ready.
	tx.mu.Lock()
	s.txMu.Lock()
	if s.tx != nil {
		s.txMu.Unlock()
		tx.mu.Unlock()
		return nil, ErrTxOpen
	}
	s.tx = tx
	s.txMu.Unlock()

	if err := ctx.Err(); err != nil {
		tx.finishLocked(err)
		tx.mu.Unlock()
		return nil, err
	}
	if s.OnTxBegin != nil {
		s.OnTxBegin(tx)
	}
	tx.mu.Unlock()
	if ctx.Done() != nil {
		go tx.watch(ctx)
	}
	return tx, nil
}

// armFrameLocked readies the transaction for its first mutation: it latches
// the shared WAL scope (serializing against every other write frame), opens
// the transaction's WAL frame, installs the undo hooks and registers the
// MVCC write mark. Idempotent; the caller must hold tx.mu.
func (tx *Tx) armFrameLocked() error {
	if tx.mark != nil {
		return nil
	}
	s := tx.sess
	if err := tx.locker.Acquire(storage.ScopeWAL); err != nil {
		return err
	}
	if err := s.Eng.WAL().BeginTx(false); err != nil {
		return err
	}
	s.installUndo(tx.u)
	tx.mark = s.Eng.BeginWrite()
	return nil
}

// installUndo points every mutating subsystem at the open transaction's
// undo log (nil clears the hooks). The caller must hold the WAL latch
// (storage.ScopeWAL), which serializes write frames.
func (s *Session) installUndo(u *undo.Log) {
	s.Eng.SetUndo(u)
	if s.Ann != nil {
		s.Ann.SetUndo(u)
	}
	if s.Prov != nil {
		s.Prov.SetUndo(u)
	}
	if s.Dep != nil {
		s.Dep.SetUndo(u)
	}
	if s.Auth != nil {
		s.Auth.SetUndo(u)
	}
}

// openTx returns the session's open transaction, or nil.
func (s *Session) openTx() *Tx {
	s.txMu.Lock()
	defer s.txMu.Unlock()
	return s.tx
}

// InTx reports whether the session has an open explicit transaction.
func (s *Session) InTx() bool { return s.openTx() != nil }

// CloseTx rolls back the session's open transaction, if any — the cleanup
// hook for shells and pools that hand sessions back without knowing whether
// the user left a transaction open. It is a no-op (nil) otherwise.
func (s *Session) CloseTx() error {
	if tx := s.openTx(); tx != nil {
		err := tx.Rollback()
		if errors.Is(err, ErrTxDone) {
			return nil
		}
		return err
	}
	return nil
}

// watch rolls the transaction back when its context is canceled before
// Commit/Rollback.
func (tx *Tx) watch(ctx context.Context) {
	select {
	case <-tx.stop:
	case <-ctx.Done():
		tx.mu.Lock()
		if !tx.done {
			_ = tx.rollbackLocked(ctx.Err())
		}
		tx.mu.Unlock()
	}
}

// doneError renders the error for operations on an ended transaction.
func (tx *Tx) doneError() error {
	if tx.endErr != nil {
		return fmt.Errorf("%w (rolled back: %v)", ErrTxDone, tx.endErr)
	}
	return ErrTxDone
}

// Commit makes the transaction's effects permanent: the TxCommit record
// closes the WAL frame (recovery will replay the transaction from here on),
// the undo log is discarded, and every latch is released. If the commit
// record cannot be written the transaction is rolled back instead and the
// error says so — an unclosed frame reads as aborted on recovery, so memory
// and disk agree. When commit-time fsync is enabled (Options.SyncOnCommit)
// the commit additionally waits, after releasing its latches, for the WAL
// to be synced through its last record — concurrent commits share one fsync
// (group commit), and a sync failure is reported to every one of them.
func (tx *Tx) Commit() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return tx.doneError()
	}
	tx.invalidateCursorsLocked()
	log := tx.sess.Eng.WAL()
	armed := tx.mark != nil
	if err := log.CommitTx(); err != nil {
		cerr := fmt.Errorf("exec: commit: %w", err)
		if rbErr := tx.rollbackLocked(cerr); rbErr != nil && !errors.Is(rbErr, ErrTxDone) {
			return errors.Join(cerr, rbErr)
		}
		return cerr
	}
	tx.u.Reset()
	var lsn uint64
	if armed {
		lsn = log.LastLSN()
	}
	tx.finishLocked(nil)
	if armed {
		if serr := log.SyncCommitted(lsn); serr != nil {
			return fmt.Errorf("exec: commit sync: %w", serr)
		}
	}
	return nil
}

// Rollback reverts every effect of the transaction and releases its
// latches. Rolling back twice (or after Commit) returns ErrTxDone.
func (tx *Tx) Rollback() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return tx.doneError()
	}
	return tx.rollbackLocked(nil)
}

// rollbackLocked reverts the transaction: open cursors are invalidated, the
// undo log runs in reverse (under the latches the transaction still holds,
// so nothing observes the intermediate states), the WAL frame is closed
// with TxAbort (best effort — an unclosed frame reads as aborted on
// recovery anyway), and the session/latch state is torn down. The caller
// must hold tx.mu.
func (tx *Tx) rollbackLocked(cause error) error {
	tx.invalidateCursorsLocked()
	rbErr := tx.u.Rollback()
	_ = tx.sess.Eng.WAL().AbortTx()
	if cause == nil {
		cause = rbErr
	}
	tx.finishLocked(cause)
	return rbErr
}

// finishLocked marks the transaction ended and releases everything it
// holds: the undo hooks and MVCC write mark (if the frame was armed), the
// session's tx slot, the watcher, and every latch — the context watcher's
// auto-rollback ends here too, so an abandoned transaction can never strand
// a latch. The caller must hold tx.mu; heap state must be final (committed
// or rolled back) before the write mark is released, because releasing it
// is what lets new snapshots see this transaction's outcome.
func (tx *Tx) finishLocked(cause error) {
	tx.done = true
	tx.endErr = cause
	close(tx.stop)
	s := tx.sess
	if tx.mark != nil {
		s.installUndo(nil)
		s.Eng.EndWrite(tx.mark)
		tx.mark = nil
	}
	s.txMu.Lock()
	if s.tx == tx {
		s.tx = nil
	}
	s.txMu.Unlock()
	tx.locker.ReleaseAll()
	if s.OnTxEnd != nil {
		s.OnTxEnd(tx)
	}
}

// invalidateCursorsLocked kills the streaming cursors opened inside the
// transaction: their next Next reports false with Err() == ErrTxDone.
func (tx *Tx) invalidateCursorsLocked() {
	for _, r := range tx.cursors {
		r.invalidate(ErrTxDone)
	}
	tx.cursors = nil
}

// Savepoint establishes a named savepoint at the current point of the
// transaction. Reusing a name shadows the earlier savepoint until a
// rollback releases it, matching standard SQL semantics.
func (tx *Tx) Savepoint(name string) error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return tx.doneError()
	}
	if strings.TrimSpace(name) == "" {
		return fmt.Errorf("%w: empty savepoint name", sqlparse.ErrSyntax)
	}
	key := strings.ToLower(name)
	// A savepoint record must land inside the transaction's WAL frame, so
	// creating one arms the frame like a mutation would.
	if err := tx.armFrameLocked(); err != nil {
		return fmt.Errorf("exec: savepoint %s: %w", name, err)
	}
	if _, err := tx.sess.Eng.WAL().Append(wal.KindTxSavepoint, "", []byte(key)); err != nil {
		return fmt.Errorf("exec: savepoint %s: %w", name, err)
	}
	tx.saves = append(tx.saves, txSavepoint{name: key, mark: tx.u.Len()})
	return nil
}

// RollbackTo reverts the statements executed after the named savepoint and
// keeps the transaction open. Savepoints created after it are released; the
// named one survives and can be rolled back to again. If the rollback
// marker cannot be logged the WHOLE transaction is rolled back (a later
// COMMIT would otherwise re-commit the reverted statements on recovery) and
// the returned error says so.
func (tx *Tx) RollbackTo(name string) error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return tx.doneError()
	}
	key := strings.ToLower(name)
	idx := -1
	for i := len(tx.saves) - 1; i >= 0; i-- {
		if tx.saves[i].name == key {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("%w: %s", ErrNoSavepoint, name)
	}
	if _, err := tx.sess.Eng.WAL().Append(wal.KindTxRollbackTo, "", []byte(key)); err != nil {
		aerr := fmt.Errorf("exec: rollback to savepoint %s failed to log, transaction rolled back: %w", name, err)
		if rbErr := tx.rollbackLocked(aerr); rbErr != nil {
			return errors.Join(aerr, rbErr)
		}
		return aerr
	}
	err := tx.u.RollbackTo(tx.saves[idx].mark)
	tx.saves = tx.saves[:idx+1]
	return err
}

// Query runs one statement inside the transaction and returns a cursor over
// its result. Transaction-control SQL (COMMIT, ROLLBACK, SAVEPOINT, ...) is
// accepted and routed to the matching Tx method.
func (tx *Tx) Query(ctx context.Context, sql string, args ...any) (*Rows, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	params, err := bindArgs(sqlparse.CountPlaceholders(stmt), args)
	if err != nil {
		return nil, err
	}
	if sqlparse.IsTxControl(stmt) {
		msg, err := tx.sess.execTxControl(ctx, stmt)
		if err != nil {
			return nil, err
		}
		return &Rows{message: msg, limit: -1}, nil
	}
	return tx.queryStmt(ctx, stmt, params, nil)
}

// Exec runs one statement inside the transaction and materializes the full
// result.
func (tx *Tx) Exec(sql string, args ...any) (*Result, error) {
	rows, err := tx.Query(context.Background(), sql, args...)
	if err != nil {
		return nil, err
	}
	return rows.materialize()
}

// queryStmt executes a parsed, bound statement inside the transaction,
// latching first: a SELECT latches the tables it reads (two-phase locking
// over reads is what keeps writer isolation serializable — think
// SELECT-then-UPDATE transfer patterns), a mutation latches its write set
// and arms the WAL frame. Latches accumulate until the transaction ends. A
// statement refused with storage.ErrDeadlock fails alone — the transaction
// stays usable and keeps what it already holds. A mutating statement that
// fails is rolled back to its own start and the transaction stays usable.
func (tx *Tx) queryStmt(ctx context.Context, stmt sqlparse.Statement, params value.Row, prep *Stmt) (*Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return nil, tx.doneError()
	}
	s := tx.sess
	if sel, ok := stmt.(*sqlparse.SelectStmt); ok {
		if err := tx.locker.Acquire(selectScopeList(sel)...); err != nil {
			return nil, err
		}
		if !s.NoOptimize {
			rows, err := s.buildStream(ctx, sel, params, prep, nil)
			if err != nil {
				return nil, err
			}
			// The cursor reads the current state under the transaction's
			// latches (so it observes the transaction's own writes); it is
			// invalidated when the transaction ends, and each Next holds
			// tx.mu so an auto-rollback never races an in-flight pull.
			rows.txmu = &tx.mu
			tx.cursors = append(tx.cursors, rows)
			return rows, nil
		}
	}
	var res *Result
	var err error
	if readOnlyStmt(stmt) {
		res, err = s.execStmt(ctx, stmt, params)
	} else {
		res, err = tx.execMutationLocked(ctx, stmt, params)
	}
	if err != nil {
		return nil, err
	}
	return &Rows{
		cols:     res.Columns,
		rows:     res.Rows,
		affected: res.Affected,
		message:  res.Message,
		limit:    -1,
	}, nil
}

// execMutationLocked runs one mutating statement with statement-level
// atomicity: on error the statement's own effects are undone (the
// transaction's earlier statements survive) and a TxStmtAbort marker tells
// recovery to discard the statement's WAL records. If that marker cannot be
// written, committing would resurrect the partial statement — so the whole
// transaction is rolled back instead.
func (tx *Tx) execMutationLocked(ctx context.Context, stmt sqlparse.Statement, params value.Row) (*Result, error) {
	s := tx.sess
	// Latch the statement's tables before touching the WAL scope: writers
	// on the same table serialize on the table latch first, keeping the
	// common workloads cycle-free (a genuine cycle with another transaction
	// fails this statement with storage.ErrDeadlock, transaction intact).
	if err := tx.locker.Acquire(s.writeScopes(stmt)...); err != nil {
		return nil, err
	}
	if err := tx.armFrameLocked(); err != nil {
		return nil, err
	}
	log := s.Eng.WAL()
	mark := tx.u.Len()
	recsBefore := log.FrameRecords()
	res, err := s.execStmt(ctx, stmt, params)
	if err == nil {
		return res, nil
	}
	if rbErr := tx.u.RollbackTo(mark); rbErr != nil {
		full := tx.rollbackLocked(rbErr)
		return nil, errors.Join(err,
			fmt.Errorf("exec: statement rollback failed, transaction rolled back: %w", rbErr), full)
	}
	if n := log.FrameRecords() - recsBefore; n > 0 {
		payload := binary.AppendUvarint(nil, uint64(n))
		if _, aerr := log.Append(wal.KindTxStmtAbort, "", payload); aerr != nil {
			full := tx.rollbackLocked(aerr)
			return nil, errors.Join(err,
				fmt.Errorf("exec: statement abort marker failed, transaction rolled back: %w", aerr), full)
		}
	}
	return nil, err
}

// execTxControl handles BEGIN/COMMIT/ROLLBACK/SAVEPOINT statements against
// the session's transaction state, returning the utility message.
func (s *Session) execTxControl(ctx context.Context, stmt sqlparse.Statement) (string, error) {
	switch st := stmt.(type) {
	case *sqlparse.BeginStmt:
		if _, err := s.Begin(ctx); err != nil {
			return "", err
		}
		return "transaction started", nil
	case *sqlparse.CommitStmt:
		tx := s.openTx()
		if tx == nil {
			return "", fmt.Errorf("%w: COMMIT", ErrNoTx)
		}
		if err := tx.Commit(); err != nil {
			return "", err
		}
		return "transaction committed", nil
	case *sqlparse.RollbackStmt:
		tx := s.openTx()
		if tx == nil {
			return "", fmt.Errorf("%w: ROLLBACK", ErrNoTx)
		}
		if st.Savepoint != "" {
			if err := tx.RollbackTo(st.Savepoint); err != nil {
				return "", err
			}
			return fmt.Sprintf("rolled back to savepoint %s", strings.ToLower(st.Savepoint)), nil
		}
		if err := tx.Rollback(); err != nil {
			return "", err
		}
		return "transaction rolled back", nil
	case *sqlparse.SavepointStmt:
		tx := s.openTx()
		if tx == nil {
			return "", fmt.Errorf("%w: SAVEPOINT", ErrNoTx)
		}
		if err := tx.Savepoint(st.Name); err != nil {
			return "", err
		}
		return fmt.Sprintf("savepoint %s created", strings.ToLower(st.Name)), nil
	default:
		return "", fmt.Errorf("%w: %T", ErrUnsupported, stmt)
	}
}

// execAutoCommit wraps one bare mutating statement in an implicit
// transaction: per-table write latches and the WAL scope taken up front
// (tables first, WAL last — one sorted batch per group, so auto-commit
// statements never deadlock each other), undo hooks installed, WAL frame
// armed lazily (a statement that logs nothing leaves no trace), committed
// on success and fully rolled back — memory and, via recovery, disk — on
// any error, including context cancellation mid-write. Read-only statements
// skip all of it: SHOW PENDING reads the internally-locked approval state,
// and a NoOptimize SELECT reads the current heap (its per-row reads are
// individually consistent; naive-executor sessions are single-actor by
// construction).
func (s *Session) execAutoCommit(ctx context.Context, stmt sqlparse.Statement, params value.Row) (*Result, error) {
	if readOnlyStmt(stmt) {
		return s.execStmt(ctx, stmt, params)
	}
	locker := s.Eng.Locks().NewLocker()
	defer locker.ReleaseAll()
	if err := locker.Acquire(s.writeScopes(stmt)...); err != nil {
		return nil, err
	}
	if err := locker.Acquire(storage.ScopeWAL); err != nil {
		return nil, err
	}
	u := undo.New()
	s.installUndo(u)
	log := s.Eng.WAL()
	if err := log.BeginTx(true); err != nil {
		s.installUndo(nil)
		return nil, err
	}
	mark := s.Eng.BeginWrite()
	res, err := s.execStmt(ctx, stmt, params)
	if err != nil {
		if rbErr := u.Rollback(); rbErr != nil {
			err = errors.Join(err, fmt.Errorf("exec: statement rollback: %w", rbErr))
		}
		_ = log.AbortTx()
		s.Eng.EndWrite(mark)
		s.installUndo(nil)
		return nil, err
	}
	if cerr := log.CommitTx(); cerr != nil {
		cerr = fmt.Errorf("exec: commit statement: %w", cerr)
		if rbErr := u.Rollback(); rbErr != nil {
			cerr = errors.Join(cerr, fmt.Errorf("exec: statement rollback: %w", rbErr))
		}
		// Close the frame as aborted so a transient append failure does not
		// wedge every later statement on "frame already open"; if even the
		// abort marker is lost, recovery treats the next frame's TxBegin as
		// an implicit abort of this one.
		_ = log.AbortTx()
		s.Eng.EndWrite(mark)
		s.installUndo(nil)
		return nil, cerr
	}
	lsn := log.LastLSN()
	s.Eng.EndWrite(mark)
	s.installUndo(nil)
	// Release the latches before waiting on durability: the fsync is shared
	// (group commit), and holding latches across it would serialize commits
	// on the disk instead of on data conflicts.
	locker.ReleaseAll()
	if serr := log.SyncCommitted(lsn); serr != nil {
		return nil, fmt.Errorf("exec: commit sync: %w", serr)
	}
	return res, nil
}
