package exec

// Streaming grouped aggregation. groupAggIter replaces the naive executor's
// materialize-then-group step in the cursor pipeline: it consumes its input
// through a spillable hash table (spill.go) whose buckets hold a
// representative row, the column-wise union of the group's annotations (the
// paper's Section 3.4 semantics for grouping operators) and constant-size
// aggregate accumulators instead of the member rows themselves — so a group
// of a million rows costs the same resident memory as a group of one, and
// the table as a whole is bounded by the session's spill budget.
//
// Output groups are emitted in first-seen order, exactly like the reference
// executor's groupRows, even after spilling (every bucket carries the
// sequence number of its first member).

import (
	"fmt"

	"bdbms/internal/annotation"
	"bdbms/internal/sqlparse"
	"bdbms/internal/storage"
	"bdbms/internal/value"
)

// aggKind enumerates the supported accumulator shapes.
type aggKind int

const (
	aggCountStar aggKind = iota
	aggCount
	aggSum
	aggAvg
	aggMin
	aggMax
)

// aggSpec is one AggregateExpr node of the statement (SELECT list or HAVING)
// resolved against the binding layout. Every syntactic occurrence gets its
// own accumulator; the emitted rows resolve AggregateExpr nodes by pointer.
type aggSpec struct {
	node *sqlparse.AggregateExpr
	kind aggKind
	slot int // value slot of the aggregated column; -1 for COUNT(*)
}

// collectAggregates resolves every aggregate node reachable from the SELECT
// items and HAVING clause. Resolution errors are deferred to the first input
// row (via the returned error alongside the specs): the reference executor
// only surfaces them when at least one group exists.
func collectAggregates(st *sqlparse.SelectStmt, bindings []binding) ([]aggSpec, error) {
	var specs []aggSpec
	var firstErr error
	add := func(e sqlparse.Expr) {
		sqlparse.WalkExpr(e, func(sub sqlparse.Expr) {
			agg, ok := sub.(*sqlparse.AggregateExpr)
			if !ok {
				return
			}
			spec := aggSpec{node: agg, slot: -1}
			switch agg.Func {
			case "COUNT":
				spec.kind = aggCount
				if agg.Star {
					spec.kind = aggCountStar
				}
			case "SUM":
				spec.kind = aggSum
			case "AVG":
				spec.kind = aggAvg
			case "MIN":
				spec.kind = aggMin
			case "MAX":
				spec.kind = aggMax
			default:
				if firstErr == nil {
					firstErr = fmt.Errorf("%w: aggregate %s", ErrUnsupported, agg.Func)
				}
				return
			}
			if agg.Star && agg.Func != "COUNT" {
				if firstErr == nil {
					firstErr = fmt.Errorf("%w: %s(*)", ErrUnsupported, agg.Func)
				}
				return
			}
			if !agg.Star {
				idx, _, err := resolveColumn(bindings, agg.Column)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				spec.slot = idx
			}
			specs = append(specs, spec)
		})
	}
	for _, item := range st.Items {
		if !item.Star {
			add(item.Expr)
		}
	}
	if st.Having != nil {
		add(st.Having)
	}
	return specs, firstErr
}

// aggState is one accumulator. It is the single implementation of aggregate
// semantics: the naive reference executor (evalAggregate), the streaming
// grouped path and its spill codec all fold through these update/merge/final
// steps, so the three executors cannot drift apart.
//
// SUM and AVG accumulate INT inputs in an exact int64 (isum) for as long as
// every input is an integer and the running total fits; the first FLOAT input
// or int64 overflow promotes the accumulator to float64 (inexact), matching
// the all-float behaviour the executor had before. SUM of an all-INT group is
// therefore exact — and an INT — even beyond 2^53; SUM of an all-NULL group
// stays 0, AVG of an all-NULL group is NULL, MIN/MAX keep the earliest value
// on ties and propagate Compare's type-mismatch errors.
type aggState struct {
	count   int64
	sum     float64 // float accumulation, meaningful once inexact
	isum    int64   // exact integer accumulation while !inexact
	inexact bool    // a FLOAT joined, or isum overflowed
	n       int64
	best    value.Value
	hasBest bool
}

// addInt64 adds two int64s, reporting false on overflow.
func addInt64(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// total returns the accumulated sum as a float64, whichever representation
// holds it.
func (a *aggState) total() float64 {
	if a.inexact {
		return a.sum
	}
	return float64(a.isum)
}

// addInt folds one non-NULL int64 into the SUM/AVG accumulator without
// boxing — the vectorized consume path's equivalent of addNum on an INT.
func (a *aggState) addInt(x int64) {
	if !a.inexact {
		if s, ok := addInt64(a.isum, x); ok {
			a.isum = s
			return
		}
		a.sum, a.inexact, a.isum = float64(a.isum), true, 0
	}
	a.sum += float64(x)
}

// addFloat folds one non-NULL float64 into the SUM/AVG accumulator.
func (a *aggState) addFloat(x float64) {
	if !a.inexact {
		a.sum, a.inexact, a.isum = float64(a.isum), true, 0
	}
	a.sum += x
}

// addNum folds one non-NULL value into the SUM/AVG accumulator.
func (a *aggState) addNum(v value.Value) {
	if !a.inexact && v.Type() == value.Int {
		if s, ok := addInt64(a.isum, v.Int()); ok {
			a.isum = s
			return
		}
	}
	if !a.inexact {
		a.sum, a.inexact, a.isum = float64(a.isum), true, 0
	}
	a.sum += v.Float()
}

func (a *aggState) update(kind aggKind, v value.Value) error {
	switch kind {
	case aggCountStar:
		a.count++
	case aggCount:
		if !v.IsNull() {
			a.count++
		}
	case aggSum, aggAvg:
		if !v.IsNull() {
			a.addNum(v)
			a.n++
		}
	case aggMin, aggMax:
		if v.IsNull() {
			return nil
		}
		if !a.hasBest {
			a.best, a.hasBest = v, true
			return nil
		}
		c, err := v.Compare(a.best)
		if err != nil {
			return err
		}
		if (kind == aggMin && c < 0) || (kind == aggMax && c > 0) {
			a.best = v
		}
	}
	return nil
}

// merge folds src (accumulated over later members) into a.
func (a *aggState) merge(kind aggKind, src *aggState) error {
	a.count += src.count
	if !a.inexact && !src.inexact {
		if s, ok := addInt64(a.isum, src.isum); ok {
			a.isum = s
		} else {
			a.sum, a.inexact, a.isum = float64(a.isum)+float64(src.isum), true, 0
		}
	} else {
		a.sum, a.inexact, a.isum = a.total()+src.total(), true, 0
	}
	a.n += src.n
	if src.hasBest {
		if !a.hasBest {
			a.best, a.hasBest = src.best, true
		} else {
			c, err := src.best.Compare(a.best)
			if err != nil {
				return err
			}
			if (kind == aggMin && c < 0) || (kind == aggMax && c > 0) {
				a.best = src.best
			}
		}
	}
	return nil
}

func (a *aggState) final(kind aggKind) value.Value {
	switch kind {
	case aggCountStar, aggCount:
		return value.NewInt(a.count)
	case aggSum:
		if a.inexact {
			return value.NewFloat(a.sum)
		}
		return value.NewInt(a.isum)
	case aggAvg:
		if a.n == 0 {
			return value.NewNull()
		}
		return value.NewFloat(a.total() / float64(a.n))
	default: // aggMin, aggMax
		if !a.hasBest {
			return value.NewNull()
		}
		return a.best
	}
}

// groupBucket is the resident state of one group.
type groupBucket struct {
	vals value.Row
	anns [][]*annotation.Annotation
	aggs []aggState
}

// groupAggIter consumes its decorated input on the first Next and then emits
// one execRow per group, in first-seen order, with the aggregate results
// attached (execRow.aggVals) for the projector and HAVING to resolve.
type groupAggIter struct {
	s       *Session
	in      rowIter
	keyIdx  []int
	specs   []aggSpec
	specErr error
	sf      *spillFile
	grouper *spillGrouper[groupBucket]

	// batches, when set, feeds the aggregation column vectors directly
	// (consumeBatches) instead of pulling adapted rows from in. The cursor
	// sets it only when nothing between the scan and the aggregation does
	// per-row work (no annotation decoration, no AWHERE); annWidth is the
	// decorator's total column count, so buckets carry the same empty
	// annotation layout the row path would attach.
	batches  *batchScanIter
	annWidth int

	started bool
	next    func() (*groupBucket, bool, error)
	keyBuf  []byte
	delta   groupBucket // reused scratch for appendDelta records
}

// newGroupAggIter resolves the GROUP BY key slots eagerly (the reference
// executor errors on an unknown grouping column even over empty input) and
// defers aggregate-resolution errors to the first row.
func newGroupAggIter(s *Session, in rowIter, st *sqlparse.SelectStmt, bindings []binding, sf *spillFile) (*groupAggIter, error) {
	var keyIdx []int
	for i := range st.GroupBy {
		idx, _, err := resolveColumn(bindings, &st.GroupBy[i])
		if err != nil {
			return nil, err
		}
		keyIdx = append(keyIdx, idx)
	}
	specs, specErr := collectAggregates(st, bindings)
	g := &groupAggIter{s: s, in: in, keyIdx: keyIdx, specs: specs, specErr: specErr, sf: sf}
	g.grouper = newSpillGrouper(grouperOps[groupBucket]{
		size:       g.bucketSize,
		encode:     g.encodeBucket,
		decode:     g.decodeBucket,
		decodeInto: g.decodeBucketInto,
		merge:      g.mergeBuckets,
	}, s.spillBudget(), sf)
	return g, nil
}

func (g *groupAggIter) bucketSize(b *groupBucket) int {
	return sizeOfValues(b.vals) + sizeOfAnnCells(b.anns) + len(b.aggs)*56
}

func (g *groupAggIter) encodeBucket(dst []byte, b *groupBucket) []byte {
	// A nil representative row marks a re-observation bucket: an earlier
	// flush generation already spilled this group's row (and the merge keeps
	// only the earliest generation's payload), so the record carries just the
	// accumulators.
	if b.vals == nil {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		dst = appendValueRow(dst, b.vals)
	}
	dst = appendAnnCells(dst, b.anns)
	for i := range b.aggs {
		a := &b.aggs[i]
		dst = appendVarint(dst, a.count)
		dst = appendFloat(dst, a.sum)
		dst = appendVarint(dst, a.isum)
		if a.inexact {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendVarint(dst, a.n)
		if a.hasBest {
			dst = append(dst, 1)
			dst = appendOneValue(dst, a.best)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

func (g *groupAggIter) decodeBucket(r *byteReader) (*groupBucket, error) {
	b := &groupBucket{}
	if err := g.decodeBucketInto(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// decodeBucketInto decodes a spill record into a reusable bucket (the
// accumulator slice is retained across calls; everything else is replaced).
func (g *groupAggIter) decodeBucketInto(r *byteReader, b *groupBucket) error {
	b.vals = nil
	if r.byteVal() != 0 {
		b.vals = r.row()
	}
	b.anns = r.annCells()
	if cap(b.aggs) < len(g.specs) {
		b.aggs = make([]aggState, len(g.specs))
	} else {
		b.aggs = b.aggs[:len(g.specs)]
	}
	for i := range b.aggs {
		a := &b.aggs[i]
		a.count = r.varint()
		a.sum = r.float()
		a.isum = r.varint()
		a.inexact = r.byteVal() != 0
		a.n = r.varint()
		a.best, a.hasBest = value.Value{}, false
		if r.byteVal() != 0 {
			a.best = r.oneValue()
			a.hasBest = true
		}
	}
	return r.err
}

// resetDelta clears and returns the reusable single-observation bucket the
// consume loops encode through appendDelta when the resident table is frozen.
func (g *groupAggIter) resetDelta() *groupBucket {
	d := &g.delta
	d.vals, d.anns = nil, nil
	if cap(d.aggs) < len(g.specs) {
		d.aggs = make([]aggState, len(g.specs))
	} else {
		d.aggs = d.aggs[:len(g.specs)]
		for i := range d.aggs {
			d.aggs[i] = aggState{}
		}
	}
	return d
}

func (g *groupAggIter) mergeBuckets(dst, src *groupBucket) error {
	for c := range dst.anns {
		if c < len(src.anns) {
			dst.anns[c] = unionAnnotations(dst.anns[c], src.anns[c])
		}
	}
	for i := range dst.aggs {
		if err := dst.aggs[i].merge(g.specs[i].kind, &src.aggs[i]); err != nil {
			return err
		}
	}
	return nil
}

// groupKeyBytes renders the group key into the reused key buffer exactly like
// the reference executor (strings.Join of Value.String() with NUL
// separators), so the two paths always form identical groups.
func (g *groupAggIter) groupKeyBytes(vals value.Row) []byte {
	g.keyBuf = g.keyBuf[:0]
	for i, idx := range g.keyIdx {
		if i > 0 {
			g.keyBuf = append(g.keyBuf, 0)
		}
		g.keyBuf = append(g.keyBuf, vals[idx].String()...)
	}
	return g.keyBuf
}

func (g *groupAggIter) consume() error {
	first := true
	for {
		r, ok, err := g.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if first {
			first = false
			if g.specErr != nil {
				// The reference executor surfaces aggregate resolution errors
				// only when at least one group exists.
				return g.specErr
			}
		}
		key := g.groupKeyBytes(r.values)
		b := g.grouper.lookup(key)
		delta := false
		switch {
		case b != nil:
			// Resident group: fold this member's annotations in.
			grown := 0
			for c := range b.anns {
				if c < len(r.anns) && len(r.anns[c]) > 0 {
					before := len(b.anns[c])
					b.anns[c] = unionAnnotations(b.anns[c], r.anns[c])
					grown += (len(b.anns[c]) - before) * 8
				}
			}
			g.grouper.grow(grown)
		case !g.grouper.overflowing():
			b = &groupBucket{
				vals: r.values,
				anns: r.anns,
				aggs: make([]aggState, len(g.specs)),
			}
			g.grouper.insert(string(key), b)
		default:
			// Frozen table: this observation spills as a delta record. The
			// member's annotations always ride along; the representative row
			// only until the key's first delta is on disk (the merge keeps
			// the earliest payload and drops the rest).
			delta = true
			b = g.resetDelta()
			b.anns = r.anns
			if !g.grouper.flushedBefore(key) {
				b.vals = r.values
			}
		}
		for i := range g.specs {
			spec := &g.specs[i]
			v := value.Value{}
			if spec.slot >= 0 {
				v = r.values[spec.slot]
			}
			if err := b.aggs[i].update(spec.kind, v); err != nil {
				return err
			}
		}
		if delta {
			if err := g.grouper.appendDelta(key, b); err != nil {
				return err
			}
		}
	}
}

// consumeBatches is the vectorized twin of consume: it folds column vectors
// into the same spillable hash table, building group keys without boxing and
// updating INT/FLOAT SUM/AVG accumulators straight from the typed vectors.
// Group formation, first-seen order, NULL handling, error surfacing and spill
// behaviour are identical to the row path — the fuzzer runs both and diffs.
func (g *groupAggIter) consumeBatches() error {
	bs := g.batches
	off := bs.src.offset
	first := true
	for {
		b, ok, err := bs.nextBatch()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if first {
			first = false
			if g.specErr != nil {
				return g.specErr
			}
		}
		for _, i := range b.sel {
			g.keyBuf = g.keyBuf[:0]
			for ki, idx := range g.keyIdx {
				if ki > 0 {
					g.keyBuf = append(g.keyBuf, 0)
				}
				g.keyBuf = b.vecs[idx-off].appendKeyString(g.keyBuf, i)
			}
			bkt := g.grouper.lookup(g.keyBuf)
			delta := false
			if bkt == nil {
				if !g.grouper.overflowing() {
					bkt = &groupBucket{
						vals: b.rowValues(i),
						anns: make([][]*annotation.Annotation, g.annWidth),
						aggs: make([]aggState, len(g.specs)),
					}
					g.grouper.insert(string(g.keyBuf), bkt)
				} else {
					// Frozen table: spill this observation as a delta record.
					// The representative row rides along only until the key's
					// first delta is on disk; batched input carries no
					// annotations to fold.
					delta = true
					bkt = g.resetDelta()
					if !g.grouper.flushedBefore(g.keyBuf) {
						bkt.vals = b.rowValues(i)
						bkt.anns = make([][]*annotation.Annotation, g.annWidth)
					}
				}
			}
			for si := range g.specs {
				spec := &g.specs[si]
				a := &bkt.aggs[si]
				if spec.slot < 0 {
					// COUNT(*) is the only slotless aggregate.
					a.count++
					continue
				}
				v := &b.vecs[spec.slot-off]
				if v.null(i) {
					// Every slotted aggregate ignores NULL.
					continue
				}
				switch {
				case spec.kind == aggCount:
					a.count++
				case (spec.kind == aggSum || spec.kind == aggAvg) && v.kind == storage.ColInt:
					a.addInt(v.ints[i])
					a.n++
				case (spec.kind == aggSum || spec.kind == aggAvg) && v.kind == storage.ColFloat:
					a.addFloat(v.flts[i])
					a.n++
				default:
					if err := a.update(spec.kind, v.valueAt(i)); err != nil {
						return err
					}
				}
			}
			if delta {
				if err := g.grouper.appendDelta(g.keyBuf, bkt); err != nil {
					return err
				}
			}
		}
	}
}

func (g *groupAggIter) Next() (execRow, bool, error) {
	if !g.started {
		g.started = true
		consume := g.consume
		if g.batches != nil {
			consume = g.consumeBatches
		}
		if err := consume(); err != nil {
			return execRow{}, false, err
		}
		next, err := g.grouper.finish()
		if err != nil {
			return execRow{}, false, err
		}
		g.next = next
	}
	b, ok, err := g.next()
	if err != nil || !ok {
		return execRow{}, false, err
	}
	aggVals := make(map[*sqlparse.AggregateExpr]value.Value, len(g.specs))
	for i := range g.specs {
		aggVals[g.specs[i].node] = b.aggs[i].final(g.specs[i].kind)
	}
	return execRow{values: b.vals, anns: b.anns, aggVals: aggVals}, true, nil
}

// havingIter filters grouped rows by the HAVING condition, resolving
// aggregates from the rows' accumulator results.
type havingIter struct {
	s        *Session
	in       rowIter
	expr     sqlparse.Expr
	bindings []binding
	params   value.Row
}

func (it *havingIter) Next() (execRow, bool, error) {
	for {
		r, ok, err := it.in.Next()
		if err != nil || !ok {
			return execRow{}, false, err
		}
		keep, err := it.s.evalBool(it.expr, it.bindings, r, r.group, it.params)
		if err != nil {
			return execRow{}, false, err
		}
		if keep {
			return r, true, nil
		}
	}
}

// annMatchIter keeps rows with at least one annotation satisfying the
// condition (AWHERE after grouping = AHAVING).
type annMatchIter struct {
	in     rowIter
	expr   sqlparse.Expr
	params value.Row
}

func (it *annMatchIter) Next() (execRow, bool, error) {
	for {
		r, ok, err := it.in.Next()
		if err != nil || !ok {
			return execRow{}, false, err
		}
		match, err := annRowMatches(it.expr, &r, it.params)
		if err != nil {
			return execRow{}, false, err
		}
		if match {
			return r, true, nil
		}
	}
}

// annFilterIter drops annotations (never rows) failing the FILTER condition.
type annFilterIter struct {
	in     rowIter
	expr   sqlparse.Expr
	params value.Row
}

func (it *annFilterIter) Next() (execRow, bool, error) {
	r, ok, err := it.in.Next()
	if err != nil || !ok {
		return execRow{}, false, err
	}
	if err := filterRowAnns(it.expr, &r, it.params); err != nil {
		return execRow{}, false, err
	}
	return r, true, nil
}
