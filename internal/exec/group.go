package exec

// Streaming grouped aggregation. groupAggIter replaces the naive executor's
// materialize-then-group step in the cursor pipeline: it consumes its input
// through a spillable hash table (spill.go) whose buckets hold a
// representative row, the column-wise union of the group's annotations (the
// paper's Section 3.4 semantics for grouping operators) and constant-size
// aggregate accumulators instead of the member rows themselves — so a group
// of a million rows costs the same resident memory as a group of one, and
// the table as a whole is bounded by the session's spill budget.
//
// Output groups are emitted in first-seen order, exactly like the reference
// executor's groupRows, even after spilling (every bucket carries the
// sequence number of its first member).

import (
	"fmt"

	"bdbms/internal/annotation"
	"bdbms/internal/sqlparse"
	"bdbms/internal/value"
)

// aggKind enumerates the supported accumulator shapes.
type aggKind int

const (
	aggCountStar aggKind = iota
	aggCount
	aggSum
	aggAvg
	aggMin
	aggMax
)

// aggSpec is one AggregateExpr node of the statement (SELECT list or HAVING)
// resolved against the binding layout. Every syntactic occurrence gets its
// own accumulator; the emitted rows resolve AggregateExpr nodes by pointer.
type aggSpec struct {
	node *sqlparse.AggregateExpr
	kind aggKind
	slot int // value slot of the aggregated column; -1 for COUNT(*)
}

// collectAggregates resolves every aggregate node reachable from the SELECT
// items and HAVING clause. Resolution errors are deferred to the first input
// row (via the returned error alongside the specs): the reference executor
// only surfaces them when at least one group exists.
func collectAggregates(st *sqlparse.SelectStmt, bindings []binding) ([]aggSpec, error) {
	var specs []aggSpec
	var firstErr error
	add := func(e sqlparse.Expr) {
		sqlparse.WalkExpr(e, func(sub sqlparse.Expr) {
			agg, ok := sub.(*sqlparse.AggregateExpr)
			if !ok {
				return
			}
			spec := aggSpec{node: agg, slot: -1}
			switch agg.Func {
			case "COUNT":
				spec.kind = aggCount
				if agg.Star {
					spec.kind = aggCountStar
				}
			case "SUM":
				spec.kind = aggSum
			case "AVG":
				spec.kind = aggAvg
			case "MIN":
				spec.kind = aggMin
			case "MAX":
				spec.kind = aggMax
			default:
				if firstErr == nil {
					firstErr = fmt.Errorf("%w: aggregate %s", ErrUnsupported, agg.Func)
				}
				return
			}
			if agg.Star && agg.Func != "COUNT" {
				if firstErr == nil {
					firstErr = fmt.Errorf("%w: %s(*)", ErrUnsupported, agg.Func)
				}
				return
			}
			if !agg.Star {
				idx, _, err := resolveColumn(bindings, agg.Column)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				spec.slot = idx
			}
			specs = append(specs, spec)
		})
	}
	for _, item := range st.Items {
		if !item.Star {
			add(item.Expr)
		}
	}
	if st.Having != nil {
		add(st.Having)
	}
	return specs, firstErr
}

// aggState is one accumulator. Its update, merge and final steps replicate
// evalAggregate over the member list exactly: SUM is always a FLOAT (0 for an
// all-NULL group), AVG of an all-NULL group is NULL, MIN/MAX keep the
// earliest value on ties and propagate Compare's type-mismatch errors.
type aggState struct {
	count   int64
	sum     float64
	n       int64
	best    value.Value
	hasBest bool
}

func (a *aggState) update(kind aggKind, v value.Value) error {
	switch kind {
	case aggCountStar:
		a.count++
	case aggCount:
		if !v.IsNull() {
			a.count++
		}
	case aggSum, aggAvg:
		if !v.IsNull() {
			a.sum += v.Float()
			a.n++
		}
	case aggMin, aggMax:
		if v.IsNull() {
			return nil
		}
		if !a.hasBest {
			a.best, a.hasBest = v, true
			return nil
		}
		c, err := v.Compare(a.best)
		if err != nil {
			return err
		}
		if (kind == aggMin && c < 0) || (kind == aggMax && c > 0) {
			a.best = v
		}
	}
	return nil
}

// merge folds src (accumulated over later members) into a.
func (a *aggState) merge(kind aggKind, src *aggState) error {
	a.count += src.count
	a.sum += src.sum
	a.n += src.n
	if src.hasBest {
		if !a.hasBest {
			a.best, a.hasBest = src.best, true
		} else {
			c, err := src.best.Compare(a.best)
			if err != nil {
				return err
			}
			if (kind == aggMin && c < 0) || (kind == aggMax && c > 0) {
				a.best = src.best
			}
		}
	}
	return nil
}

func (a *aggState) final(kind aggKind) value.Value {
	switch kind {
	case aggCountStar, aggCount:
		return value.NewInt(a.count)
	case aggSum:
		return value.NewFloat(a.sum)
	case aggAvg:
		if a.n == 0 {
			return value.NewNull()
		}
		return value.NewFloat(a.sum / float64(a.n))
	default: // aggMin, aggMax
		if !a.hasBest {
			return value.NewNull()
		}
		return a.best
	}
}

// groupBucket is the resident state of one group.
type groupBucket struct {
	vals value.Row
	anns [][]*annotation.Annotation
	aggs []aggState
}

// groupAggIter consumes its decorated input on the first Next and then emits
// one execRow per group, in first-seen order, with the aggregate results
// attached (execRow.aggVals) for the projector and HAVING to resolve.
type groupAggIter struct {
	s       *Session
	in      rowIter
	keyIdx  []int
	specs   []aggSpec
	specErr error
	sf      *spillFile
	grouper *spillGrouper[groupBucket]

	started bool
	next    func() (*groupBucket, bool, error)
	keyBuf  []byte
}

// newGroupAggIter resolves the GROUP BY key slots eagerly (the reference
// executor errors on an unknown grouping column even over empty input) and
// defers aggregate-resolution errors to the first row.
func newGroupAggIter(s *Session, in rowIter, st *sqlparse.SelectStmt, bindings []binding, sf *spillFile) (*groupAggIter, error) {
	var keyIdx []int
	for i := range st.GroupBy {
		idx, _, err := resolveColumn(bindings, &st.GroupBy[i])
		if err != nil {
			return nil, err
		}
		keyIdx = append(keyIdx, idx)
	}
	specs, specErr := collectAggregates(st, bindings)
	g := &groupAggIter{s: s, in: in, keyIdx: keyIdx, specs: specs, specErr: specErr, sf: sf}
	g.grouper = newSpillGrouper(grouperOps[groupBucket]{
		size:   g.bucketSize,
		encode: g.encodeBucket,
		decode: g.decodeBucket,
		merge:  g.mergeBuckets,
	}, s.spillBudget(), sf)
	return g, nil
}

func (g *groupAggIter) bucketSize(b *groupBucket) int {
	return sizeOfValues(b.vals) + sizeOfAnnCells(b.anns) + len(b.aggs)*56
}

func (g *groupAggIter) encodeBucket(dst []byte, b *groupBucket) []byte {
	dst = appendValueRow(dst, b.vals)
	dst = appendAnnCells(dst, b.anns)
	for i := range b.aggs {
		a := &b.aggs[i]
		dst = appendVarint(dst, a.count)
		dst = appendFloat(dst, a.sum)
		dst = appendVarint(dst, a.n)
		if a.hasBest {
			dst = append(dst, 1)
			dst = appendOneValue(dst, a.best)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

func (g *groupAggIter) decodeBucket(r *byteReader) (*groupBucket, error) {
	b := &groupBucket{vals: r.row(), anns: r.annCells(), aggs: make([]aggState, len(g.specs))}
	for i := range b.aggs {
		a := &b.aggs[i]
		a.count = r.varint()
		a.sum = r.float()
		a.n = r.varint()
		if r.byteVal() != 0 {
			a.best = r.oneValue()
			a.hasBest = true
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return b, nil
}

func (g *groupAggIter) mergeBuckets(dst, src *groupBucket) error {
	for c := range dst.anns {
		if c < len(src.anns) {
			dst.anns[c] = unionAnnotations(dst.anns[c], src.anns[c])
		}
	}
	for i := range dst.aggs {
		if err := dst.aggs[i].merge(g.specs[i].kind, &src.aggs[i]); err != nil {
			return err
		}
	}
	return nil
}

// groupKey renders the group key exactly like the reference executor
// (strings.Join of Value.String() with NUL separators), so the two paths
// always form identical groups.
func (g *groupAggIter) groupKey(vals value.Row) string {
	g.keyBuf = g.keyBuf[:0]
	for i, idx := range g.keyIdx {
		if i > 0 {
			g.keyBuf = append(g.keyBuf, 0)
		}
		g.keyBuf = append(g.keyBuf, vals[idx].String()...)
	}
	return string(g.keyBuf)
}

func (g *groupAggIter) consume() error {
	first := true
	for {
		r, ok, err := g.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if first {
			first = false
			if g.specErr != nil {
				// The reference executor surfaces aggregate resolution errors
				// only when at least one group exists.
				return g.specErr
			}
		}
		b, fresh, err := g.grouper.observe(g.groupKey(r.values), func() (*groupBucket, error) {
			return &groupBucket{
				vals: r.values,
				anns: r.anns,
				aggs: make([]aggState, len(g.specs)),
			}, nil
		})
		if err != nil {
			return err
		}
		if !fresh {
			grown := 0
			for c := range b.anns {
				if c < len(r.anns) && len(r.anns[c]) > 0 {
					before := len(b.anns[c])
					b.anns[c] = unionAnnotations(b.anns[c], r.anns[c])
					grown += (len(b.anns[c]) - before) * 8
				}
			}
			g.grouper.grow(grown)
		}
		for i := range g.specs {
			spec := &g.specs[i]
			v := value.Value{}
			if spec.slot >= 0 {
				v = r.values[spec.slot]
			}
			if err := b.aggs[i].update(spec.kind, v); err != nil {
				return err
			}
		}
		if err := g.grouper.maybeSpill(); err != nil {
			return err
		}
	}
}

func (g *groupAggIter) Next() (execRow, bool, error) {
	if !g.started {
		g.started = true
		if err := g.consume(); err != nil {
			return execRow{}, false, err
		}
		next, err := g.grouper.finish()
		if err != nil {
			return execRow{}, false, err
		}
		g.next = next
	}
	b, ok, err := g.next()
	if err != nil || !ok {
		return execRow{}, false, err
	}
	aggVals := make(map[*sqlparse.AggregateExpr]value.Value, len(g.specs))
	for i := range g.specs {
		aggVals[g.specs[i].node] = b.aggs[i].final(g.specs[i].kind)
	}
	return execRow{values: b.vals, anns: b.anns, aggVals: aggVals}, true, nil
}

// havingIter filters grouped rows by the HAVING condition, resolving
// aggregates from the rows' accumulator results.
type havingIter struct {
	s        *Session
	in       rowIter
	expr     sqlparse.Expr
	bindings []binding
	params   value.Row
}

func (it *havingIter) Next() (execRow, bool, error) {
	for {
		r, ok, err := it.in.Next()
		if err != nil || !ok {
			return execRow{}, false, err
		}
		keep, err := it.s.evalBool(it.expr, it.bindings, r, r.group, it.params)
		if err != nil {
			return execRow{}, false, err
		}
		if keep {
			return r, true, nil
		}
	}
}

// annMatchIter keeps rows with at least one annotation satisfying the
// condition (AWHERE after grouping = AHAVING).
type annMatchIter struct {
	in     rowIter
	expr   sqlparse.Expr
	params value.Row
}

func (it *annMatchIter) Next() (execRow, bool, error) {
	for {
		r, ok, err := it.in.Next()
		if err != nil || !ok {
			return execRow{}, false, err
		}
		match, err := annRowMatches(it.expr, &r, it.params)
		if err != nil {
			return execRow{}, false, err
		}
		if match {
			return r, true, nil
		}
	}
}

// annFilterIter drops annotations (never rows) failing the FILTER condition.
type annFilterIter struct {
	in     rowIter
	expr   sqlparse.Expr
	params value.Row
}

func (it *annFilterIter) Next() (execRow, bool, error) {
	r, ok, err := it.in.Next()
	if err != nil || !ok {
		return execRow{}, false, err
	}
	if err := filterRowAnns(it.expr, &r, it.params); err != nil {
		return execRow{}, false, err
	}
	return r, true, nil
}
