package wal

import (
	"errors"
	"path/filepath"
	"testing"
)

// TestSyncPoisoning: one failed fsync must poison the log — later Syncs
// cannot spuriously report durability and Truncate refuses to discard the
// only redo copy of recent records.
func TestSyncPoisoning(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "test.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(KindInsert, "T", []byte("row")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("healthy sync: %v", err)
	}
	if err := l.SyncError(); err != nil {
		t.Fatalf("healthy log reports poison: %v", err)
	}

	l.FailSyncAfter(0)
	if err := l.Sync(); !errors.Is(err, ErrInjectedSyncFailure) {
		t.Fatalf("armed sync = %v, want injected failure", err)
	}
	l.FailSyncAfter(-1) // disarming must not clear the poison
	if err := l.Sync(); !errors.Is(err, ErrSyncPoisoned) {
		t.Fatalf("post-failure sync = %v, want ErrSyncPoisoned", err)
	}
	if err := l.SyncError(); err == nil {
		t.Fatal("SyncError = nil on a poisoned log")
	}
	if err := l.Truncate(); !errors.Is(err, ErrSyncPoisoned) {
		t.Fatalf("truncate on poisoned log = %v, want refusal", err)
	}
	if l.Len() != 1 {
		t.Fatalf("refused truncate still dropped records: len = %d", l.Len())
	}
	// Appends still work: the engine keeps running, only durability
	// reporting and truncation are off the table.
	if _, err := l.Append(KindInsert, "T", []byte("row2")); err != nil {
		t.Fatalf("append on poisoned log: %v", err)
	}
}

// TestFailSyncAfterCountdown: n syncs succeed before the arm trips.
func TestFailSyncAfterCountdown(t *testing.T) {
	l := NewMemory()
	l.FailSyncAfter(2)
	for i := 0; i < 2; i++ {
		if err := l.Sync(); err != nil {
			t.Fatalf("sync %d within budget: %v", i, err)
		}
	}
	if err := l.Sync(); !errors.Is(err, ErrInjectedSyncFailure) {
		t.Fatalf("sync past budget = %v", err)
	}
}
