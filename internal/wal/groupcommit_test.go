package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// TestSyncCommittedDefaultOff: with commit-time fsync disabled (the default)
// SyncCommitted is a no-op — durability stays checkpoint-based and commits
// never block on the disk.
func TestSyncCommittedDefaultOff(t *testing.T) {
	l := NewMemory()
	lsn, err := l.Append(KindInsert, "T", []byte("row"))
	if err != nil {
		t.Fatal(err)
	}
	if l.SyncOnCommit() {
		t.Fatal("SyncOnCommit should default to off")
	}
	// Even a poisoned log does not fail commits when the option is off:
	// the durability contract being waived is exactly the point.
	l.FailSyncAfter(0)
	_ = l.Sync()
	if err := l.SyncCommitted(lsn); err != nil {
		t.Fatalf("SyncCommitted with option off = %v, want nil", err)
	}
}

// TestSyncCommittedCoversBatch: one flush covers every record appended
// before it ran. The fault-point budget proves no second fsync happens: with
// exactly one successful sync allowed, the second commit must be satisfied
// by the first commit's flush or it would trip the injected failure.
func TestSyncCommittedCoversBatch(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "gc.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetSyncOnCommit(true)
	l.FailSyncAfter(1) // budget: exactly one successful fsync

	lsn1, err := l.Append(KindInsert, "T", []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	lsn2, err := l.Append(KindInsert, "T", []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SyncCommitted(lsn1); err != nil {
		t.Fatalf("leader commit: %v", err)
	}
	// lsn2 was appended before the leader's flush captured the tail, so it
	// is already durable; a second fsync here would exhaust the budget.
	if err := l.SyncCommitted(lsn2); err != nil {
		t.Fatalf("covered commit re-synced instead of riding the batch: %v", err)
	}
	// A record appended after the flush does need a new fsync — which the
	// exhausted budget turns into a failure, proving the accounting.
	lsn3, err := l.Append(KindInsert, "T", []byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SyncCommitted(lsn3); !errors.Is(err, ErrInjectedSyncFailure) {
		t.Fatalf("post-batch commit = %v, want injected sync failure", err)
	}
	// And from here the log is poisoned for every later commit.
	if err := l.SyncCommitted(lsn3); !errors.Is(err, ErrSyncPoisoned) {
		t.Fatalf("commit after poison = %v, want ErrSyncPoisoned", err)
	}
}

// TestSyncCommittedPoisonFailsAllWaiters: when the shared fsync fails, every
// commit in the batch must see the failure — leader and parked followers
// alike. A failed fsync may have lost any of the batched records, so none of
// those commits may report durability.
func TestSyncCommittedPoisonFailsAllWaiters(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "gc.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetSyncOnCommit(true)
	l.FailSyncAfter(0) // the very next fsync fails

	const writers = 16
	errs := make(chan error, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, aerr := l.Append(KindInsert, "T", []byte{byte(i)})
			if aerr != nil {
				errs <- aerr
				return
			}
			errs <- l.SyncCommitted(lsn)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("a commit reported durability after the batch fsync failed")
		}
		if !errors.Is(err, ErrInjectedSyncFailure) && !errors.Is(err, ErrSyncPoisoned) {
			t.Fatalf("unexpected commit error: %v", err)
		}
	}
}

// TestSyncCommittedConcurrentHealthy: many concurrent commits on a healthy
// log all succeed and the synced watermark reaches the tail. (Run under
// -race this also shakes out ticket/watermark races.)
func TestSyncCommittedConcurrentHealthy(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "gc.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetSyncOnCommit(true)

	const writers = 32
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				lsn, aerr := l.Append(KindInsert, "T", fmt.Appendf(nil, "%d-%d", i, j))
				if aerr != nil {
					t.Error(aerr)
					return
				}
				if serr := l.SyncCommitted(lsn); serr != nil {
					t.Error(serr)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if err := l.SyncCommitted(l.LastLSN()); err != nil {
		t.Fatalf("final watermark sync: %v", err)
	}
}
