// Package wal implements a minimal append-only write-ahead log. In bdbms the
// log has two clients: the storage engine records row mutations for
// durability, and the content-based approval manager (Section 6 of the paper)
// keeps its operation log — every INSERT/UPDATE/DELETE together with the
// automatically generated inverse statement — as tagged WAL records.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// Kind tags the type of a log record.
type Kind uint8

// Log record kinds.
const (
	// KindInsert records a row insertion.
	KindInsert Kind = iota + 1
	// KindUpdate records a row update.
	KindUpdate
	// KindDelete records a row deletion.
	KindDelete
	// KindApproval records a content-approval decision.
	KindApproval
	// KindCheckpoint marks a checkpoint.
	KindCheckpoint
	// KindAnnotation records an annotation insertion (ADD ANNOTATION).
	KindAnnotation
	// KindCreateTable records CREATE TABLE (payload: JSON schema).
	KindCreateTable
	// KindDropTable records DROP TABLE.
	KindDropTable
	// KindCreateIndex records CREATE INDEX (payload: column name).
	KindCreateIndex
	// KindCreateAnnTable records CREATE ANNOTATION TABLE (payload: JSON def).
	KindCreateAnnTable
	// KindDropAnnTable records DROP ANNOTATION TABLE.
	KindDropAnnTable
	// KindAnnArchive records ARCHIVE/RESTORE ANNOTATION state changes
	// (payload: JSON list of annotation IDs plus the archived flag).
	KindAnnArchive
	// KindDepMark records an outdated-bitmap cell transition from the
	// dependency manager (payload: JSON cell plus set/clear flag).
	KindDepMark
	// KindProvAgent records provenance agent (de)registration.
	KindProvAgent
	// KindTxBegin opens a transaction frame: the data records that follow,
	// up to the matching KindTxCommit or KindTxAbort, belong to one
	// transaction. Write frames are serialized by the storage layer's WAL
	// latch, so frames never interleave and records need no transaction ID.
	KindTxBegin
	// KindTxCommit closes a transaction frame: recovery redoes its records.
	// A frame with no closing record (the process died mid-transaction) is
	// rolled back on reopen from the before-images its records carry.
	KindTxCommit
	// KindTxAbort closes a rolled-back transaction frame: recovery undoes
	// any of its effects that reached disk and skips the rest.
	KindTxAbort
	// KindTxSavepoint marks a savepoint inside an open frame (payload: name).
	KindTxSavepoint
	// KindTxRollbackTo records ROLLBACK TO SAVEPOINT (payload: name):
	// recovery discards — and compensates on disk for — the frame records
	// after the named savepoint.
	KindTxRollbackTo
	// KindTxStmtAbort records the mid-transaction rollback of one failed
	// statement (payload: uvarint count of the data records to discard), so
	// a later COMMIT does not commit the failed statement's partial effects.
	KindTxStmtAbort
)

// IsTxControl reports whether the kind is a transaction-framing record
// rather than a logical data record.
func (k Kind) IsTxControl() bool {
	switch k {
	case KindTxBegin, KindTxCommit, KindTxAbort, KindTxSavepoint, KindTxRollbackTo, KindTxStmtAbort:
		return true
	default:
		return false
	}
}

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindInsert:
		return "INSERT"
	case KindUpdate:
		return "UPDATE"
	case KindDelete:
		return "DELETE"
	case KindApproval:
		return "APPROVAL"
	case KindCheckpoint:
		return "CHECKPOINT"
	case KindAnnotation:
		return "ANNOTATION"
	case KindCreateTable:
		return "CREATE-TABLE"
	case KindDropTable:
		return "DROP-TABLE"
	case KindCreateIndex:
		return "CREATE-INDEX"
	case KindCreateAnnTable:
		return "CREATE-ANN-TABLE"
	case KindDropAnnTable:
		return "DROP-ANN-TABLE"
	case KindAnnArchive:
		return "ANN-ARCHIVE"
	case KindDepMark:
		return "DEP-MARK"
	case KindProvAgent:
		return "PROV-AGENT"
	case KindTxBegin:
		return "TX-BEGIN"
	case KindTxCommit:
		return "TX-COMMIT"
	case KindTxAbort:
		return "TX-ABORT"
	case KindTxSavepoint:
		return "TX-SAVEPOINT"
	case KindTxRollbackTo:
		return "TX-ROLLBACK-TO"
	case KindTxStmtAbort:
		return "TX-STMT-ABORT"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// Record is a single log entry.
type Record struct {
	// LSN is the log sequence number, assigned on append, starting at 1.
	LSN uint64
	// Kind tags the record type.
	Kind Kind
	// Table is the table the record concerns ("" when not applicable).
	Table string
	// Payload is the record body (already serialised by the caller).
	Payload []byte
	// Time is when the record was appended.
	Time time.Time
}

// Errors returned by the log.
var (
	// ErrCorrupt is returned when reading a damaged log.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrInjectedFailure is returned by Append once an injected fault point
	// (FailAfter) trips. It simulates the process dying before the record
	// reached the log: the record is neither written to disk nor kept in
	// memory, and every later Append keeps failing.
	ErrInjectedFailure = errors.New("wal: injected failure (simulated crash)")
	// ErrInjectedSyncFailure is returned by Sync once an injected sync fault
	// point (FailSyncAfter) trips.
	ErrInjectedSyncFailure = errors.New("wal: injected sync failure")
	// ErrSyncPoisoned marks a log whose Sync failed at least once. A failed
	// fsync may have dropped the dirty log data from the kernel cache, so
	// later syncs returning nil would spuriously report durability; the log
	// stays poisoned, and refuses to Truncate, until reopened.
	ErrSyncPoisoned = errors.New("wal: sync previously failed; durability cannot be trusted")
)

// errTorn marks a record cut short by a crash mid-append. Unlike a checksum
// mismatch (bit rot, hard corruption), a torn tail is expected after a crash
// and replay recovers by truncating the file to the last intact record.
var errTorn = errors.New("wal: torn tail record")

// Log is an append-only record log. The zero value is not usable; construct
// with NewMemory or Open.
type Log struct {
	mu      sync.Mutex
	records []Record
	nextLSN uint64
	file    *os.File // nil for memory-only logs
	// failAfter, when >= 0, is the number of further Appends allowed before
	// ErrInjectedFailure; -1 disables fault injection.
	failAfter int
	// failSyncAfter, when >= 0, is the number of further Syncs allowed
	// before ErrInjectedSyncFailure; -1 disables sync fault injection.
	failSyncAfter int
	// syncErr, once set, poisons every later Sync and Truncate (see
	// ErrSyncPoisoned).
	syncErr error
	// txOpen is true while a transaction frame is open (TxBegin written,
	// closing record pending); txPending arms a lazy frame: the TxBegin is
	// written immediately before the first data record, so an auto-commit
	// statement that appends nothing leaves no frame behind.
	txOpen    bool
	txPending bool
	// txRecords counts the data records appended inside the open frame.
	txRecords int
	// syncOnCommit gates group commit: when set, SyncCommitted really
	// fsyncs. Off by default — the base durability contract is
	// durability-at-checkpoint, and SyncCommitted is then a no-op.
	syncOnCommit bool
	// syncedLSN is the highest LSN known flushed to stable storage by a
	// SyncCommitted flush. Commits at or below it return without syncing.
	syncedLSN uint64
	// flush is the in-flight group-commit ticket: non-nil while some commit
	// is running Sync on behalf of everyone appended so far. Later commits
	// park on it instead of issuing their own fsync.
	flush *flushTicket
}

// flushTicket is one shared group-commit flush: followers park on done and
// re-examine the log state when the leader closes it.
type flushTicket struct {
	done chan struct{}
}

// NewMemory returns an in-memory log.
func NewMemory() *Log { return &Log{nextLSN: 1, failAfter: -1, failSyncAfter: -1} }

// Open opens (or creates) a file-backed log, replaying existing records into
// memory so they can be iterated. A torn final record — the signature of a
// crash mid-append — is tolerated: replay stops at the last intact record and
// the tail is discarded on the next append.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{nextLSN: 1, file: f, failAfter: -1, failSyncAfter: -1}
	if err := l.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

func (l *Log) replay() error {
	info, err := l.file.Stat()
	if err != nil {
		return fmt.Errorf("wal: stat: %w", err)
	}
	size := info.Size()
	if _, err := l.file.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReader(l.file)
	var good int64
	for {
		rec, n, err := readRecord(r, size-good)
		if errors.Is(err, io.EOF) {
			break
		}
		if errors.Is(err, errTorn) {
			// Torn tail from a crash mid-append: keep the intact prefix and
			// discard the rest so the next append starts on a clean boundary.
			if err := l.file.Truncate(good); err != nil {
				return fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			break
		}
		if err != nil {
			return err
		}
		good += n
		l.records = append(l.records, rec)
		if rec.LSN >= l.nextLSN {
			l.nextLSN = rec.LSN + 1
		}
	}
	_, err = l.file.Seek(good, io.SeekStart)
	return err
}

// Append adds a record and returns its LSN. When a lazy transaction frame is
// armed (BeginTx(true)), the first data record transparently appends the
// opening TxBegin first, so empty frames never reach the log.
func (l *Log) Append(kind Kind, table string, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.txPending && !kind.IsTxControl() {
		if _, err := l.appendLocked(KindTxBegin, "", nil); err != nil {
			return 0, err
		}
		l.txPending = false
		l.txOpen = true
	}
	lsn, err := l.appendLocked(kind, table, payload)
	if err == nil && l.txOpen && !kind.IsTxControl() {
		l.txRecords++
	}
	return lsn, err
}

// appendLocked writes one record; the caller holds l.mu.
func (l *Log) appendLocked(kind Kind, table string, payload []byte) (uint64, error) {
	if l.failAfter == 0 {
		return 0, ErrInjectedFailure
	}
	if l.failAfter > 0 {
		l.failAfter--
	}
	rec := Record{
		LSN:     l.nextLSN,
		Kind:    kind,
		Table:   table,
		Payload: append([]byte(nil), payload...),
		Time:    time.Now().UTC(),
	}
	if l.file != nil {
		// Remember the tail so a half-written record (disk full, EIO
		// between the header and frame writes) can be rolled back; without
		// the rollback a LATER successful append would land after the torn
		// bytes and the whole log would read as corrupt.
		off, err := l.file.Seek(0, io.SeekCurrent)
		if err != nil {
			return 0, fmt.Errorf("wal: append: %w", err)
		}
		if err := writeRecord(l.file, rec); err != nil {
			if terr := l.file.Truncate(off); terr == nil {
				_, _ = l.file.Seek(off, io.SeekStart)
			}
			return 0, err
		}
	}
	l.records = append(l.records, rec)
	l.nextLSN++
	return rec.LSN, nil
}

// BeginTx opens a transaction frame. Eager mode (lazy == false) appends the
// TxBegin record immediately — explicit BEGIN statements use it so the frame
// is visible in the log even while still empty. Lazy mode arms the frame
// without touching the log; the TxBegin is appended just before the first
// data record, which keeps statements that log nothing (GRANT, a DELETE
// matching no rows) free of framing records. Frames never nest: every write
// frame runs under the storage layer's exclusive WAL latch.
func (l *Log) BeginTx(lazy bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.txOpen || l.txPending {
		return fmt.Errorf("wal: transaction frame already open")
	}
	if lazy {
		l.txPending = true
		return nil
	}
	if _, err := l.appendLocked(KindTxBegin, "", nil); err != nil {
		return err
	}
	l.txOpen = true
	return nil
}

// CommitTx closes the open frame with a TxCommit record. A lazy frame that
// never materialized commits for free. On error the frame is NOT committed —
// the caller must treat the transaction as rolled back (recovery will, from
// the unclosed frame).
func (l *Log) CommitTx() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.txPending {
		l.txPending = false
		return nil
	}
	if !l.txOpen {
		return nil
	}
	if _, err := l.appendLocked(KindTxCommit, "", nil); err != nil {
		return err
	}
	l.txOpen = false
	l.txRecords = 0
	return nil
}

// AbortTx closes the open frame with a TxAbort record. Best effort: even
// when the append fails (the injected-crash path), the frame state is
// cleared — an unclosed frame at the log tail reads as aborted on recovery
// anyway.
func (l *Log) AbortTx() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.txPending {
		l.txPending = false
		return nil
	}
	if !l.txOpen {
		return nil
	}
	l.txOpen = false
	l.txRecords = 0
	_, err := l.appendLocked(KindTxAbort, "", nil)
	return err
}

// InTx reports whether a transaction frame is open or armed.
func (l *Log) InTx() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.txOpen || l.txPending
}

// FrameRecords returns the number of data records appended inside the open
// frame. The executor diffs it around a statement to emit the right
// TxStmtAbort count when a mid-transaction statement fails.
func (l *Log) FrameRecords() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.txRecords
}

// FailAfter arms a fault point for crash-injection tests: the next n Appends
// succeed, every one after that returns ErrInjectedFailure without touching
// the log. A negative n disarms the fault point.
func (l *Log) FailAfter(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 0 {
		l.failAfter = -1
		return
	}
	l.failAfter = n
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// EnsureNextLSN raises the next LSN to at least min. Recovery calls it with
// the checkpoint manifest's counter so LSNs stay monotonic across a
// truncation even when the truncated log is empty.
func (l *Log) EnsureNextLSN(min uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nextLSN < min {
		l.nextLSN = min
	}
}

// Truncate discards every record, resetting a file-backed log to empty on
// disk. The LSN counter is preserved so records appended after the
// truncation keep ascending — the checkpoint manifest records the counter,
// letting recovery tell pre- from post-checkpoint records.
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.syncErr != nil {
		// The records being discarded are the only redo copy of recent
		// commits; with durability in doubt they must stay.
		return fmt.Errorf("wal: refusing to truncate: %w (first failure: %v)", ErrSyncPoisoned, l.syncErr)
	}
	if l.file != nil {
		if err := l.file.Truncate(0); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
		if _, err := l.file.Seek(0, io.SeekStart); err != nil {
			return err
		}
	}
	l.records = nil
	l.txOpen = false
	l.txPending = false
	l.txRecords = 0
	return nil
}

// TruncateFrom discards every record with an LSN at or above lsn, in memory
// and on disk. Recovery uses it to drop the unclosed transaction frame a
// crash left at the log tail — after its effects are undone, the records
// must go too, or appends by the reopened database would extend a frame
// that never commits. The LSN counter is left untouched, so LSNs stay
// monotonic across the cut.
func (l *Log) TruncateFrom(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	idx := len(l.records)
	for idx > 0 && l.records[idx-1].LSN >= lsn {
		idx--
	}
	if idx == len(l.records) {
		return nil
	}
	if l.file != nil {
		var off int64
		for _, rec := range l.records[:idx] {
			off += recordSize(rec)
		}
		if err := l.file.Truncate(off); err != nil {
			return fmt.Errorf("wal: truncate from LSN %d: %w", lsn, err)
		}
		if _, err := l.file.Seek(off, io.SeekStart); err != nil {
			return err
		}
	}
	l.records = l.records[:idx]
	return nil
}

// recordSize returns the exact number of bytes writeRecord produced for
// rec; TruncateFrom sums it over the surviving prefix to find the file
// offset to cut at.
func recordSize(rec Record) int64 {
	return int64(recordHeaderSize + recordFixedFrame + len(rec.Table) + len(rec.Payload))
}

// Sync flushes a file-backed log to stable storage. After one failed sync
// (real or injected) the log is poisoned: every later Sync fails with
// ErrSyncPoisoned rather than pretending the lost records became durable.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.syncErr != nil {
		return fmt.Errorf("%w (first failure: %v)", ErrSyncPoisoned, l.syncErr)
	}
	if l.failSyncAfter == 0 {
		l.syncErr = ErrInjectedSyncFailure
		return ErrInjectedSyncFailure
	}
	if l.failSyncAfter > 0 {
		l.failSyncAfter--
	}
	if l.file == nil {
		return nil
	}
	if err := l.file.Sync(); err != nil {
		l.syncErr = err
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// SetSyncOnCommit switches commit-time fsync (group commit) on or off.
// Off (the default), SyncCommitted is a no-op and durability is provided at
// checkpoint boundaries, as before. On, every commit blocks until its
// records are on stable storage — batched: concurrent commits share one
// fsync instead of paying one each.
func (l *Log) SetSyncOnCommit(on bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.syncOnCommit = on
}

// SyncOnCommit reports whether commit-time fsync is enabled.
func (l *Log) SyncOnCommit() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncOnCommit
}

// LastLSN returns the LSN of the most recently appended record (0 when the
// log has always been empty). A committing writer captures it while still
// holding the WAL latch and passes it to SyncCommitted after releasing.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// SyncCommitted blocks until every record up to lsn is on stable storage —
// the group-commit entry point, called by each committing writer AFTER it
// released its latches so concurrent commits can batch. The first arrival
// becomes the flush leader: it captures the current log tail and runs one
// Sync covering every record appended so far. Commits arriving while that
// flush is in flight park on its ticket; when it completes they are either
// covered (their LSN is under the flushed tail) or loop to lead the next
// flush — at most two fsyncs of latency for any commit, one fsync total per
// batch.
//
// A failed or poisoned Sync fails EVERY commit waiting here, leader and
// parked followers alike: a failed fsync may have lost any of the batched
// records, so none of them may report durability (the PR 6 sticky-poisoning
// contract, extended to batches).
//
// When SetSyncOnCommit is off (the default), SyncCommitted returns nil
// immediately and durability remains checkpoint-based.
func (l *Log) SyncCommitted(lsn uint64) error {
	l.mu.Lock()
	if !l.syncOnCommit {
		l.mu.Unlock()
		return nil
	}
	for {
		if l.syncErr != nil {
			err := fmt.Errorf("%w (first failure: %v)", ErrSyncPoisoned, l.syncErr)
			l.mu.Unlock()
			return err
		}
		if l.syncedLSN >= lsn {
			l.mu.Unlock()
			return nil
		}
		if t := l.flush; t != nil {
			// Park on the in-flight flush; re-check everything when it
			// lands (it may not cover lsn, or it may have poisoned the log).
			l.mu.Unlock()
			<-t.done
			l.mu.Lock()
			continue
		}
		// Become the flush leader for everything appended so far.
		t := &flushTicket{done: make(chan struct{})}
		l.flush = t
		cover := l.nextLSN - 1
		l.mu.Unlock()
		err := l.Sync()
		l.mu.Lock()
		l.flush = nil
		if err == nil && cover > l.syncedLSN {
			l.syncedLSN = cover
		}
		close(t.done)
		if err != nil {
			l.mu.Unlock()
			return err
		}
		// cover >= lsn by construction (our records were appended before
		// this call), so the next loop iteration returns nil.
	}
}

// FailSyncAfter arms a sync fault point: the next n Syncs succeed, every
// one after that fails with ErrInjectedSyncFailure and poisons the log. A
// negative n disarms the fault point but does not clear poisoning — like a
// real fsync failure, there is no way to prove the data made it.
func (l *Log) FailSyncAfter(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 0 {
		l.failSyncAfter = -1
		return
	}
	l.failSyncAfter = n
}

// SyncError reports the poisoned state: nil while every Sync so far
// succeeded, otherwise the first failure. Checkpoint consults it before
// discarding redo information.
func (l *Log) SyncError() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncErr
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Records returns a snapshot copy of all records in LSN order. The returned
// slice is owned by the caller: concurrent Appends never become visible
// through it, so iterating while other goroutines append is safe. (Payload
// byte slices are shared with the log but are never mutated after Append
// copies them in.)
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// Iterate calls fn for every record in LSN order, stopping early when fn
// returns false.
func (l *Log) Iterate(fn func(Record) bool) {
	for _, rec := range l.Records() {
		if !fn(rec) {
			return
		}
	}
}

// Since returns a snapshot copy of all records with LSN strictly greater
// than lsn. Like Records, the result never aliases the live internal slice.
func (l *Log) Since(lsn uint64) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Records are in ascending LSN order: binary-search the cut point.
	lo, hi := 0, len(l.records)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.records[mid].LSN > lsn {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	out := make([]Record, len(l.records)-lo)
	copy(out, l.records[lo:])
	return out
}

// Close flushes and closes a file-backed log. Memory logs become unusable for
// appends only by convention (Close is a no-op for them).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return nil
	}
	err := l.file.Close()
	l.file = nil
	return err
}

// --- on-disk record format ----------------------------------------------------
//
// Each record is framed as:
//
//	crc32(frame)  uint32
//	frameLen      uint32
//	frame: lsn uint64 | kind uint8 | unixNano int64 | tableLen uint16 | table | payload
//
// The size constants below mirror this layout; writeRecord, readRecord and
// recordSize (which TruncateFrom uses to compute byte offsets) must all
// move together when the format changes — TestRecordSizeMatchesWriter
// cross-checks them.
const (
	// recordHeaderSize is the crc32 + frameLen prefix.
	recordHeaderSize = 8
	// recordFixedFrame is the fixed portion of the frame: lsn (8) +
	// kind (1) + unixNano (8) + tableLen (2).
	recordFixedFrame = 19
)

func writeRecord(w io.Writer, rec Record) error {
	frame := make([]byte, 0, 32+len(rec.Table)+len(rec.Payload))
	frame = binary.LittleEndian.AppendUint64(frame, rec.LSN)
	frame = append(frame, byte(rec.Kind))
	frame = binary.LittleEndian.AppendUint64(frame, uint64(rec.Time.UnixNano()))
	frame = binary.LittleEndian.AppendUint16(frame, uint16(len(rec.Table)))
	frame = append(frame, rec.Table...)
	frame = append(frame, rec.Payload...)

	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:4], crc32.ChecksumIEEE(frame))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(frame)))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("wal: write header: %w", err)
	}
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("wal: write frame: %w", err)
	}
	return nil
}

// readRecord decodes one framed record, returning how many bytes of the
// stream it consumed so replay can truncate a torn tail on the exact
// boundary of the last intact record. remaining bounds the record to the
// bytes actually left in the file, so a corrupt length field cannot trigger
// a giant allocation before the truncation is detected.
func readRecord(r *bufio.Reader, remaining int64) (Record, int64, error) {
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, 0, fmt.Errorf("%w: truncated header", errTorn)
		}
		return Record{}, 0, err
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[0:4])
	frameLen := binary.LittleEndian.Uint32(hdr[4:8])
	if int64(frameLen) > remaining-8 {
		return Record{}, 0, fmt.Errorf("%w: frame length %d exceeds file tail", errTorn, frameLen)
	}
	frame := make([]byte, frameLen)
	if _, err := io.ReadFull(r, frame); err != nil {
		return Record{}, 0, fmt.Errorf("%w: truncated frame", errTorn)
	}
	if crc32.ChecksumIEEE(frame) != wantCRC {
		// A bad checksum on the FINAL record is the other signature of a
		// crash mid-append (the frame's bytes were only partially flushed
		// before the size reached disk) and is recovered by truncation; a
		// bad checksum with intact records after it is real corruption.
		if _, err := r.Peek(1); errors.Is(err, io.EOF) {
			return Record{}, 0, fmt.Errorf("%w: checksum mismatch at tail", errTorn)
		}
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if len(frame) < recordFixedFrame {
		return Record{}, 0, fmt.Errorf("%w: short frame", ErrCorrupt)
	}
	rec := Record{
		LSN:  binary.LittleEndian.Uint64(frame[0:8]),
		Kind: Kind(frame[8]),
		Time: time.Unix(0, int64(binary.LittleEndian.Uint64(frame[9:17]))).UTC(),
	}
	tableLen := int(binary.LittleEndian.Uint16(frame[17:19]))
	if len(frame) < recordFixedFrame+tableLen {
		return Record{}, 0, fmt.Errorf("%w: bad table length", ErrCorrupt)
	}
	rec.Table = string(frame[recordFixedFrame : recordFixedFrame+tableLen])
	rec.Payload = append([]byte(nil), frame[recordFixedFrame+tableLen:]...)
	return rec, int64(recordHeaderSize + len(frame)), nil
}
