// Package wal implements a minimal append-only write-ahead log. In bdbms the
// log has two clients: the storage engine records row mutations for
// durability, and the content-based approval manager (Section 6 of the paper)
// keeps its operation log — every INSERT/UPDATE/DELETE together with the
// automatically generated inverse statement — as tagged WAL records.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// Kind tags the type of a log record.
type Kind uint8

// Log record kinds.
const (
	// KindInsert records a row insertion.
	KindInsert Kind = iota + 1
	// KindUpdate records a row update.
	KindUpdate
	// KindDelete records a row deletion.
	KindDelete
	// KindApproval records a content-approval decision.
	KindApproval
	// KindCheckpoint marks a checkpoint.
	KindCheckpoint
	// KindAnnotation records an annotation operation.
	KindAnnotation
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindInsert:
		return "INSERT"
	case KindUpdate:
		return "UPDATE"
	case KindDelete:
		return "DELETE"
	case KindApproval:
		return "APPROVAL"
	case KindCheckpoint:
		return "CHECKPOINT"
	case KindAnnotation:
		return "ANNOTATION"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// Record is a single log entry.
type Record struct {
	// LSN is the log sequence number, assigned on append, starting at 1.
	LSN uint64
	// Kind tags the record type.
	Kind Kind
	// Table is the table the record concerns ("" when not applicable).
	Table string
	// Payload is the record body (already serialised by the caller).
	Payload []byte
	// Time is when the record was appended.
	Time time.Time
}

// ErrCorrupt is returned when reading a damaged log.
var ErrCorrupt = errors.New("wal: corrupt record")

// Log is an append-only record log. The zero value is not usable; construct
// with NewMemory or Open.
type Log struct {
	mu      sync.Mutex
	records []Record
	nextLSN uint64
	file    *os.File // nil for memory-only logs
}

// NewMemory returns an in-memory log.
func NewMemory() *Log { return &Log{nextLSN: 1} }

// Open opens (or creates) a file-backed log, replaying existing records into
// memory so they can be iterated.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{nextLSN: 1, file: f}
	if err := l.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

func (l *Log) replay() error {
	if _, err := l.file.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReader(l.file)
	for {
		rec, err := readRecord(r)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		l.records = append(l.records, rec)
		if rec.LSN >= l.nextLSN {
			l.nextLSN = rec.LSN + 1
		}
	}
	_, err := l.file.Seek(0, io.SeekEnd)
	return err
}

// Append adds a record and returns its LSN.
func (l *Log) Append(kind Kind, table string, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := Record{
		LSN:     l.nextLSN,
		Kind:    kind,
		Table:   table,
		Payload: append([]byte(nil), payload...),
		Time:    time.Now().UTC(),
	}
	if l.file != nil {
		if err := writeRecord(l.file, rec); err != nil {
			return 0, err
		}
	}
	l.records = append(l.records, rec)
	l.nextLSN++
	return rec.LSN, nil
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Records returns a copy of all records in LSN order.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// Iterate calls fn for every record in LSN order, stopping early when fn
// returns false.
func (l *Log) Iterate(fn func(Record) bool) {
	for _, rec := range l.Records() {
		if !fn(rec) {
			return
		}
	}
}

// Since returns all records with LSN strictly greater than lsn.
func (l *Log) Since(lsn uint64) []Record {
	var out []Record
	l.Iterate(func(r Record) bool {
		if r.LSN > lsn {
			out = append(out, r)
		}
		return true
	})
	return out
}

// Close flushes and closes a file-backed log. Memory logs become unusable for
// appends only by convention (Close is a no-op for them).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return nil
	}
	err := l.file.Close()
	l.file = nil
	return err
}

// --- on-disk record format ----------------------------------------------------
//
// Each record is framed as:
//
//	crc32(frame)  uint32
//	frameLen      uint32
//	frame: lsn uint64 | kind uint8 | unixNano int64 | tableLen uint16 | table | payload

func writeRecord(w io.Writer, rec Record) error {
	frame := make([]byte, 0, 32+len(rec.Table)+len(rec.Payload))
	frame = binary.LittleEndian.AppendUint64(frame, rec.LSN)
	frame = append(frame, byte(rec.Kind))
	frame = binary.LittleEndian.AppendUint64(frame, uint64(rec.Time.UnixNano()))
	frame = binary.LittleEndian.AppendUint16(frame, uint16(len(rec.Table)))
	frame = append(frame, rec.Table...)
	frame = append(frame, rec.Payload...)

	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:4], crc32.ChecksumIEEE(frame))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(frame)))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("wal: write header: %w", err)
	}
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("wal: write frame: %w", err)
	}
	return nil
}

func readRecord(r io.Reader) (Record, error) {
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[0:4])
	frameLen := binary.LittleEndian.Uint32(hdr[4:8])
	frame := make([]byte, frameLen)
	if _, err := io.ReadFull(r, frame); err != nil {
		return Record{}, fmt.Errorf("%w: truncated frame", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(frame) != wantCRC {
		return Record{}, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if len(frame) < 19 {
		return Record{}, fmt.Errorf("%w: short frame", ErrCorrupt)
	}
	rec := Record{
		LSN:  binary.LittleEndian.Uint64(frame[0:8]),
		Kind: Kind(frame[8]),
		Time: time.Unix(0, int64(binary.LittleEndian.Uint64(frame[9:17]))).UTC(),
	}
	tableLen := int(binary.LittleEndian.Uint16(frame[17:19]))
	if len(frame) < 19+tableLen {
		return Record{}, fmt.Errorf("%w: bad table length", ErrCorrupt)
	}
	rec.Table = string(frame[19 : 19+tableLen])
	rec.Payload = append([]byte(nil), frame[19+tableLen:]...)
	return rec, nil
}
