package wal

import (
	"os"
	"path/filepath"
	"testing"
)

func TestMemoryAppendIterate(t *testing.T) {
	l := NewMemory()
	lsn1, err := l.Append(KindInsert, "Gene", []byte("row1"))
	if err != nil {
		t.Fatal(err)
	}
	lsn2, _ := l.Append(KindDelete, "Gene", []byte("row1"))
	if lsn1 != 1 || lsn2 != 2 {
		t.Errorf("LSNs = %d, %d", lsn1, lsn2)
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d", l.Len())
	}
	recs := l.Records()
	if recs[0].Kind != KindInsert || recs[1].Kind != KindDelete {
		t.Error("kinds wrong")
	}
	if recs[0].Table != "Gene" || string(recs[0].Payload) != "row1" {
		t.Error("payload wrong")
	}
	var seen int
	l.Iterate(func(r Record) bool {
		seen++
		return false
	})
	if seen != 1 {
		t.Errorf("early stop visited %d", seen)
	}
	since := l.Since(1)
	if len(since) != 1 || since[0].LSN != 2 {
		t.Errorf("Since(1) = %v", since)
	}
	if err := l.Close(); err != nil {
		t.Errorf("memory close: %v", err)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindInsert: "INSERT", KindUpdate: "UPDATE", KindDelete: "DELETE",
		KindApproval: "APPROVAL", KindCheckpoint: "CHECKPOINT", KindAnnotation: "ANNOTATION",
		Kind(99): "KIND(99)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%v != %s", k, want)
		}
	}
}

func TestFileLogPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := l.Append(KindUpdate, "Protein", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != 100 {
		t.Fatalf("replayed %d records", l2.Len())
	}
	recs := l2.Records()
	if recs[99].LSN != 100 || recs[99].Payload[0] != 99 {
		t.Error("replayed record content wrong")
	}
	// Appending after reopen continues the LSN sequence.
	lsn, err := l2.Append(KindCheckpoint, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 101 {
		t.Errorf("next LSN = %d, want 101", lsn)
	}
}

func TestCorruptLogDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(KindInsert, "T", []byte("payload"))
	l.Close()

	// Flip a byte in the middle of the file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("corrupt log should fail to open")
	}
}

func TestTruncatedLogStopsAtEOF(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := Open(path)
	l.Append(KindInsert, "T", []byte("first"))
	l.Append(KindInsert, "T", []byte("second"))
	l.Close()

	data, _ := os.ReadFile(path)
	// Drop the last 4 bytes, truncating the final record's frame.
	os.WriteFile(path, data[:len(data)-4], 0o644)
	if _, err := Open(path); err == nil {
		t.Error("truncated frame should surface as corruption")
	}
}

func TestOpenBadPath(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing-dir", "wal.log")); err == nil {
		t.Error("open in missing directory should fail")
	}
}
