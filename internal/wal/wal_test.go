package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestMemoryAppendIterate(t *testing.T) {
	l := NewMemory()
	lsn1, err := l.Append(KindInsert, "Gene", []byte("row1"))
	if err != nil {
		t.Fatal(err)
	}
	lsn2, _ := l.Append(KindDelete, "Gene", []byte("row1"))
	if lsn1 != 1 || lsn2 != 2 {
		t.Errorf("LSNs = %d, %d", lsn1, lsn2)
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d", l.Len())
	}
	recs := l.Records()
	if recs[0].Kind != KindInsert || recs[1].Kind != KindDelete {
		t.Error("kinds wrong")
	}
	if recs[0].Table != "Gene" || string(recs[0].Payload) != "row1" {
		t.Error("payload wrong")
	}
	var seen int
	l.Iterate(func(r Record) bool {
		seen++
		return false
	})
	if seen != 1 {
		t.Errorf("early stop visited %d", seen)
	}
	since := l.Since(1)
	if len(since) != 1 || since[0].LSN != 2 {
		t.Errorf("Since(1) = %v", since)
	}
	if err := l.Close(); err != nil {
		t.Errorf("memory close: %v", err)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindInsert: "INSERT", KindUpdate: "UPDATE", KindDelete: "DELETE",
		KindApproval: "APPROVAL", KindCheckpoint: "CHECKPOINT", KindAnnotation: "ANNOTATION",
		Kind(99): "KIND(99)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%v != %s", k, want)
		}
	}
}

func TestFileLogPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := l.Append(KindUpdate, "Protein", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != 100 {
		t.Fatalf("replayed %d records", l2.Len())
	}
	recs := l2.Records()
	if recs[99].LSN != 100 || recs[99].Payload[0] != 99 {
		t.Error("replayed record content wrong")
	}
	// Appending after reopen continues the LSN sequence.
	lsn, err := l2.Append(KindCheckpoint, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 101 {
		t.Errorf("next LSN = %d, want 101", lsn)
	}
}

func TestCorruptLogDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(KindInsert, "T", []byte("payload-one"))
	firstLen, _ := os.Stat(path)
	l.Append(KindInsert, "T", []byte("payload-two"))
	l.Close()

	// Flip a byte inside the FIRST record: intact records follow, so this is
	// real corruption (bit rot), not a crash signature, and open must fail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[firstLen.Size()-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("mid-log corruption should fail to open")
	}
}

func TestChecksumTornTailRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := Open(path)
	l.Append(KindInsert, "T", []byte("first"))
	l.Append(KindInsert, "T", []byte("second"))
	l.Close()

	// Flip a byte inside the FINAL record's frame: the frame is full length
	// but its bytes were only partially flushed before the crash. Reopen
	// truncates to the last intact record.
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	l2, err := Open(path)
	if err != nil {
		t.Fatalf("checksum-torn tail should be recoverable: %v", err)
	}
	defer l2.Close()
	if l2.Len() != 1 || string(l2.Records()[0].Payload) != "first" {
		t.Errorf("replayed %d records, want the 1 intact one", l2.Len())
	}
}

func TestTornTailRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := Open(path)
	l.Append(KindInsert, "T", []byte("first"))
	l.Append(KindInsert, "T", []byte("second"))
	l.Close()

	data, _ := os.ReadFile(path)
	intact := len(data)
	// Drop the last 4 bytes, tearing the final record's frame — the on-disk
	// signature of a crash mid-append. Reopen keeps the intact prefix.
	os.WriteFile(path, data[:intact-4], 0o644)
	l2, err := Open(path)
	if err != nil {
		t.Fatalf("torn tail should be recoverable: %v", err)
	}
	defer l2.Close()
	if l2.Len() != 1 {
		t.Fatalf("replayed %d records, want the 1 intact one", l2.Len())
	}
	if string(l2.Records()[0].Payload) != "first" {
		t.Error("intact prefix content wrong")
	}
	// The torn bytes are discarded, so the next append lands on a clean
	// record boundary and survives another reopen.
	if _, err := l2.Append(KindInsert, "T", []byte("third")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if l3.Len() != 2 || string(l3.Records()[1].Payload) != "third" {
		t.Errorf("post-tear append not durable: %d records", l3.Len())
	}
}

func TestTruncatePreservesLSN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append(KindInsert, "T", []byte("a"))
	l.Append(KindInsert, "T", []byte("b"))
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 {
		t.Errorf("Len after truncate = %d", l.Len())
	}
	lsn, err := l.Append(KindInsert, "T", []byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 3 {
		t.Errorf("LSN after truncate = %d, want 3 (counter preserved)", lsn)
	}
	if info, _ := os.Stat(path); info.Size() == 0 {
		t.Error("post-truncate append did not reach the file")
	}
}

func TestEnsureNextLSN(t *testing.T) {
	l := NewMemory()
	l.EnsureNextLSN(50)
	if lsn, _ := l.Append(KindInsert, "T", nil); lsn != 50 {
		t.Errorf("LSN = %d, want 50", lsn)
	}
	l.EnsureNextLSN(10) // lower floors are ignored
	if lsn, _ := l.Append(KindInsert, "T", nil); lsn != 51 {
		t.Errorf("LSN = %d, want 51", lsn)
	}
}

func TestFailAfterInjectsFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.FailAfter(2)
	for i := 0; i < 2; i++ {
		if _, err := l.Append(KindInsert, "T", []byte{byte(i)}); err != nil {
			t.Fatalf("append %d before fault point: %v", i, err)
		}
	}
	if _, err := l.Append(KindInsert, "T", []byte{9}); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("append past fault point = %v, want ErrInjectedFailure", err)
	}
	if _, err := l.Append(KindInsert, "T", []byte{9}); !errors.Is(err, ErrInjectedFailure) {
		t.Fatal("fault point should stay tripped")
	}
	if l.Len() != 2 {
		t.Errorf("failed appends leaked into memory: Len = %d", l.Len())
	}
	l.Close()
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != 2 {
		t.Errorf("failed appends leaked to disk: Len = %d", l2.Len())
	}
	l2.FailAfter(-1)
	if _, err := l2.Append(KindInsert, "T", nil); err != nil {
		t.Errorf("disarmed fault point still fails: %v", err)
	}
}

// TestConcurrentReadersAndAppenders is the -race regression test for the
// snapshot contract of Records/Since/Iterate: readers must never observe a
// slice that concurrent Appends mutate.
func TestConcurrentReadersAndAppenders(t *testing.T) {
	l := NewMemory()
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				if _, err := l.Append(KindInsert, "T", []byte{byte(w)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				recs := l.Records()
				for i, rec := range recs {
					if rec.LSN != uint64(i+1) {
						t.Errorf("snapshot not LSN-dense at %d: %d", i, rec.LSN)
						return
					}
				}
				since := l.Since(uint64(len(recs) / 2))
				for i := 1; i < len(since); i++ {
					if since[i].LSN != since[i-1].LSN+1 {
						t.Error("Since snapshot not contiguous")
						return
					}
				}
				l.Iterate(func(Record) bool { return true })
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if l.Len() != 2000 {
		t.Errorf("Len = %d, want 2000", l.Len())
	}
}

func TestOpenBadPath(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing-dir", "wal.log")); err == nil {
		t.Error("open in missing directory should fail")
	}
}

// --- transaction framing ------------------------------------------------------

func kinds(l *Log) []Kind {
	var out []Kind
	for _, rec := range l.Records() {
		out = append(out, rec.Kind)
	}
	return out
}

func kindsEqual(got, want []Kind) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestLazyFrameMaterializesOnFirstDataRecord(t *testing.T) {
	l := NewMemory()
	if err := l.BeginTx(true); err != nil {
		t.Fatal(err)
	}
	if !l.InTx() {
		t.Fatal("lazy frame not armed")
	}
	// A frame with no data records commits without touching the log.
	if err := l.CommitTx(); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 {
		t.Fatalf("empty lazy frame wrote %d records, want 0", l.Len())
	}

	// With data records, the TxBegin appears exactly before the first one.
	if err := l.BeginTx(true); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(KindInsert, "t", []byte("r1")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(KindInsert, "t", []byte("r2")); err != nil {
		t.Fatal(err)
	}
	if got := l.FrameRecords(); got != 2 {
		t.Fatalf("FrameRecords = %d, want 2", got)
	}
	if err := l.CommitTx(); err != nil {
		t.Fatal(err)
	}
	want := []Kind{KindTxBegin, KindInsert, KindInsert, KindTxCommit}
	if got := kinds(l); !kindsEqual(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestEagerFrameAndAbort(t *testing.T) {
	l := NewMemory()
	if err := l.BeginTx(false); err != nil {
		t.Fatal(err)
	}
	if err := l.BeginTx(false); err == nil {
		t.Fatal("nested BeginTx succeeded")
	}
	if _, err := l.Append(KindDelete, "t", nil); err != nil {
		t.Fatal(err)
	}
	if err := l.AbortTx(); err != nil {
		t.Fatal(err)
	}
	if l.InTx() {
		t.Fatal("frame still open after abort")
	}
	want := []Kind{KindTxBegin, KindDelete, KindTxAbort}
	if got := kinds(l); !kindsEqual(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	// Control records never count as frame data.
	if err := l.BeginTx(false); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(KindTxSavepoint, "", []byte("s1")); err != nil {
		t.Fatal(err)
	}
	if got := l.FrameRecords(); got != 0 {
		t.Fatalf("FrameRecords after control record = %d, want 0", got)
	}
	if err := l.CommitTx(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateFromDropsTailOnDiskAndMemory(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var lsns []uint64
	for i := 0; i < 5; i++ {
		lsn, err := l.Append(KindInsert, "table", []byte{byte(i), byte(i >> 8)})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.TruncateFrom(lsns[3]); err != nil {
		t.Fatal(err)
	}
	if got := l.Len(); got != 3 {
		t.Fatalf("Len after TruncateFrom = %d, want 3", got)
	}
	// The LSN counter keeps ascending past the cut.
	lsn, err := l.Append(KindDelete, "table", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lsn <= lsns[4] {
		t.Fatalf("post-truncation LSN %d did not ascend past %d", lsn, lsns[4])
	}
	l.Close()

	// Reopen from disk: the truncated records must be gone, the survivors
	// and the post-truncation append intact.
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs := re.Records()
	if len(recs) != 4 {
		t.Fatalf("reopened log holds %d records, want 4", len(recs))
	}
	for i := 0; i < 3; i++ {
		if recs[i].LSN != lsns[i] {
			t.Fatalf("record %d LSN = %d, want %d", i, recs[i].LSN, lsns[i])
		}
	}
	if recs[3].LSN != lsn || recs[3].Kind != KindDelete {
		t.Fatalf("tail record = LSN %d %s, want LSN %d DELETE", recs[3].LSN, recs[3].Kind, lsn)
	}
	// Truncating from an LSN beyond the tail is a no-op.
	if err := re.TruncateFrom(lsn + 100); err != nil {
		t.Fatal(err)
	}
	if re.Len() != 4 {
		t.Fatal("no-op TruncateFrom changed the log")
	}
}

func TestInjectedFailureDuringLazyBegin(t *testing.T) {
	l := NewMemory()
	if err := l.BeginTx(true); err != nil {
		t.Fatal(err)
	}
	l.FailAfter(0)
	// The injected TxBegin fails, so the data record must not be written
	// either — the frame stays pending and the log stays empty.
	if _, err := l.Append(KindInsert, "t", nil); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("Append = %v, want ErrInjectedFailure", err)
	}
	if l.Len() != 0 {
		t.Fatalf("log holds %d records after injected failure, want 0", l.Len())
	}
	if err := l.AbortTx(); err != nil {
		t.Fatal(err)
	}
	if l.InTx() {
		t.Fatal("frame still armed after abort")
	}
}

// TestRecordSizeMatchesWriter cross-checks recordSize — which TruncateFrom
// trusts to compute file offsets — against the bytes writeRecord actually
// produces, so a format change cannot silently desynchronize them.
func TestRecordSizeMatchesWriter(t *testing.T) {
	for _, rec := range []Record{
		{LSN: 1, Kind: KindInsert},
		{LSN: 2, Kind: KindUpdate, Table: "Gene", Payload: []byte("payload")},
		{LSN: 3, Kind: KindTxBegin, Table: "", Payload: nil},
		{LSN: 4, Kind: KindAnnotation, Table: "a-much-longer-table-name", Payload: make([]byte, 300)},
	} {
		var buf bytes.Buffer
		if err := writeRecord(&buf, rec); err != nil {
			t.Fatal(err)
		}
		if got, want := recordSize(rec), int64(buf.Len()); got != want {
			t.Errorf("recordSize(%s table=%q payload=%d) = %d, writeRecord wrote %d",
				rec.Kind, rec.Table, len(rec.Payload), got, want)
		}
	}
}
