// Package stringbtree implements the baseline sequence index of the paper's
// Section 7.2 experiments: a String B-tree style index over *uncompressed*
// sequences. Every suffix of every sequence is inserted into a B+-tree (keys
// truncated to a fixed length, with verification against the stored text),
// supporting substring, prefix and range search.
//
// The SBC-tree (internal/sbctree) is compared against this index on storage
// footprint (E1), insertion I/O (E2) and search latency (E3).
package stringbtree

import (
	"encoding/binary"
	"sort"
	"strings"

	"bdbms/internal/btree"
)

// MaxKeyLen is the number of suffix bytes stored as the B+-tree key. Longer
// suffixes are truncated; matches are verified against the original text.
const MaxKeyLen = 32

// Match is one occurrence of a query pattern.
type Match struct {
	// SeqID is the identifier of the matching sequence.
	SeqID int64
	// Pos is the byte offset of the occurrence.
	Pos int
}

// Index is a String B-tree style index over uncompressed sequences.
type Index struct {
	tree *btree.Tree
	seqs map[int64]string
}

// New returns an empty index.
func New() *Index {
	return &Index{tree: btree.New(btree.DefaultOrder), seqs: make(map[int64]string)}
}

// Len returns the number of indexed sequences.
func (ix *Index) Len() int { return len(ix.seqs) }

// NumEntries returns the number of suffix entries in the underlying B+-tree.
func (ix *Index) NumEntries() int { return ix.tree.Len() }

// StorageBytes returns the bytes stored in the index (keys plus payloads),
// the storage measure of experiment E1.
func (ix *Index) StorageBytes() int { return ix.tree.KeyBytes() }

// EstimatePages estimates the index footprint in pages of the given size.
func (ix *Index) EstimatePages(pageSize int) int { return ix.tree.EstimatePages(pageSize) }

// IOStats returns the simulated node I/O counters of the underlying B+-tree.
func (ix *Index) IOStats() btree.IOStats { return ix.tree.Stats() }

// ResetIOStats zeroes the I/O counters.
func (ix *Index) ResetIOStats() { ix.tree.ResetStats() }

// Sequence returns a stored sequence by ID.
func (ix *Index) Sequence(id int64) (string, bool) {
	s, ok := ix.seqs[id]
	return s, ok
}

func payload(seqID int64, pos int) []byte {
	buf := make([]byte, 12)
	binary.BigEndian.PutUint64(buf[:8], uint64(seqID))
	binary.BigEndian.PutUint32(buf[8:], uint32(pos))
	return buf
}

func decodePayload(b []byte) (int64, int) {
	return int64(binary.BigEndian.Uint64(b[:8])), int(binary.BigEndian.Uint32(b[8:]))
}

func truncate(s string) []byte {
	if len(s) > MaxKeyLen {
		s = s[:MaxKeyLen]
	}
	return []byte(s)
}

// Insert indexes sequence s under id. Every suffix of s becomes one B+-tree
// entry.
func (ix *Index) Insert(id int64, s string) {
	ix.seqs[id] = s
	for pos := 0; pos < len(s); pos++ {
		ix.tree.Insert(truncate(s[pos:]), payload(id, pos))
	}
}

// SubstringSearch returns every occurrence of pattern across the indexed
// sequences, sorted by (SeqID, Pos).
func (ix *Index) SubstringSearch(pattern string) []Match {
	if pattern == "" {
		return nil
	}
	var out []Match
	probe := pattern
	if len(probe) > MaxKeyLen {
		probe = probe[:MaxKeyLen]
	}
	ix.tree.AscendPrefix([]byte(probe), func(_ []byte, values [][]byte) bool {
		for _, v := range values {
			id, pos := decodePayload(v)
			s := ix.seqs[id]
			if pos+len(pattern) <= len(s) && s[pos:pos+len(pattern)] == pattern {
				out = append(out, Match{SeqID: id, Pos: pos})
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].SeqID != out[j].SeqID {
			return out[i].SeqID < out[j].SeqID
		}
		return out[i].Pos < out[j].Pos
	})
	return out
}

// PrefixSearch returns the IDs of sequences starting with pattern, sorted.
func (ix *Index) PrefixSearch(pattern string) []int64 {
	var out []int64
	for _, m := range ix.SubstringSearch(pattern) {
		if m.Pos == 0 {
			out = append(out, m.SeqID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return dedupe(out)
}

// RangeSearch returns the IDs of sequences s with lo <= s < hi, sorted.
// An empty hi means "no upper bound".
func (ix *Index) RangeSearch(lo, hi string) []int64 {
	var out []int64
	for id, s := range ix.seqs {
		if strings.Compare(s, lo) >= 0 && (hi == "" || strings.Compare(s, hi) < 0) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ContainsSequence reports whether any indexed sequence contains pattern.
func (ix *Index) ContainsSequence(pattern string) bool {
	return len(ix.SubstringSearch(pattern)) > 0
}

func dedupe(ids []int64) []int64 {
	if len(ids) <= 1 {
		return ids
	}
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}
