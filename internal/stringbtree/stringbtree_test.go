package stringbtree

import (
	"strings"
	"testing"

	"bdbms/internal/biogen"
)

func TestInsertAndSubstringSearch(t *testing.T) {
	ix := New()
	seqs := map[int64]string{
		1: "LLLEEEHHHH",
		2: "HHHHLLEE",
		3: "EEEELLLL",
	}
	for id, s := range seqs {
		ix.Insert(id, s)
	}
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
	total := 0
	for _, s := range seqs {
		total += len(s)
	}
	if ix.NumEntries() != total {
		t.Errorf("entries = %d, want %d (one per suffix)", ix.NumEntries(), total)
	}

	for _, pattern := range []string{"LL", "EEH", "HHHH", "LE", "EEEE", "XYZ", "L"} {
		got := ix.SubstringSearch(pattern)
		want := 0
		for id, s := range seqs {
			for pos := 0; pos+len(pattern) <= len(s); pos++ {
				if s[pos:pos+len(pattern)] == pattern {
					want++
					found := false
					for _, m := range got {
						if m.SeqID == id && m.Pos == pos {
							found = true
						}
					}
					if !found {
						t.Errorf("pattern %q: missing match (%d,%d)", pattern, id, pos)
					}
				}
			}
		}
		if len(got) != want {
			t.Errorf("pattern %q: got %d matches, want %d", pattern, len(got), want)
		}
	}
	if ix.SubstringSearch("") != nil {
		t.Error("empty pattern should return nil")
	}
	if !ix.ContainsSequence("LLEE") || ix.ContainsSequence("ZZZ") {
		t.Error("ContainsSequence wrong")
	}
	if s, ok := ix.Sequence(1); !ok || s != seqs[1] {
		t.Error("Sequence lookup wrong")
	}
	if _, ok := ix.Sequence(99); ok {
		t.Error("missing sequence should not be found")
	}
}

func TestPrefixSearch(t *testing.T) {
	ix := New()
	ix.Insert(1, "HHHLLL")
	ix.Insert(2, "HHEELL")
	ix.Insert(3, "LLLHHH")
	got := ix.PrefixSearch("HH")
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("PrefixSearch(HH) = %v", got)
	}
	if len(ix.PrefixSearch("LLLH")) != 1 {
		t.Error("PrefixSearch(LLLH) wrong")
	}
	if len(ix.PrefixSearch("X")) != 0 {
		t.Error("absent prefix")
	}
}

func TestRangeSearch(t *testing.T) {
	ix := New()
	ix.Insert(1, "AAA")
	ix.Insert(2, "BBB")
	ix.Insert(3, "CCC")
	if got := ix.RangeSearch("AAA", "CCC"); len(got) != 2 {
		t.Errorf("range [AAA,CCC) = %v", got)
	}
	if got := ix.RangeSearch("B", ""); len(got) != 2 {
		t.Errorf("range [B,inf) = %v", got)
	}
}

func TestLongSequencesAndTruncatedKeys(t *testing.T) {
	gen := biogen.New(5)
	ix := New()
	seqs := gen.SecondaryStructures(20, 200, 400, 10)
	for i, s := range seqs {
		ix.Insert(int64(i+1), s)
	}
	// Patterns longer than MaxKeyLen must still verify correctly.
	long := seqs[0][10 : 10+MaxKeyLen+8]
	got := ix.SubstringSearch(long)
	if len(got) == 0 {
		t.Fatal("long pattern not found")
	}
	for _, m := range got {
		s := seqs[m.SeqID-1]
		if !strings.HasPrefix(s[m.Pos:], long) {
			t.Fatal("false positive on long pattern")
		}
	}
	if ix.StorageBytes() == 0 || ix.EstimatePages(4096) < 2 {
		t.Error("storage accounting missing")
	}
	if ix.IOStats().NodeWrites == 0 {
		t.Error("insertion I/O not tracked")
	}
	ix.ResetIOStats()
	if ix.IOStats().NodeWrites != 0 {
		t.Error("ResetIOStats failed")
	}
}
