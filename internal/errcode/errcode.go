// Package errcode assigns stable, categorized codes to the sentinel errors
// of every bdbms subsystem. The codes travel in wire error frames
// (internal/server/wire) so network clients can branch on failure classes
// without matching error strings, and they are stable across releases: a
// code, once shipped, never changes meaning.
//
// A code is a dotted lowercase path, category first: "parse.syntax",
// "tx.done", "authz.denied", "storage.page_corrupt". The category (the
// segment before the first dot) groups codes coarsely — parse, exec, tx,
// authz, catalog, annotation, value, storage, ctx, net — so a client can
// handle a whole class ("any tx.* means my transaction is gone") or a
// precise code ("catalog.table_exists means CREATE TABLE raced me").
package errcode

import (
	"context"
	"errors"
	"strings"

	"bdbms/internal/annotation"
	"bdbms/internal/authz"
	"bdbms/internal/catalog"
	"bdbms/internal/exec"
	"bdbms/internal/heap"
	"bdbms/internal/pager"
	"bdbms/internal/sqlparse"
	"bdbms/internal/value"
	"bdbms/internal/wal"
)

// Code is a stable categorized error code.
type Code string

// The code vocabulary. Every code maps from a sentinel error of an internal
// package (see FromError), except the net.* codes, which originate in the
// network server itself.
const (
	// OK is the zero code: no error.
	OK Code = ""

	// Parse errors.
	Syntax Code = "parse.syntax"

	// Executor errors.
	BadArgs         Code = "exec.bad_args"
	Unsupported     Code = "exec.unsupported"
	UnknownColumn   Code = "exec.unknown_column"
	AmbiguousColumn Code = "exec.ambiguous_column"
	Spill           Code = "exec.spill"

	// Transaction-protocol errors.
	TxDone        Code = "tx.done"
	TxOpen        Code = "tx.open"
	TxNone        Code = "tx.none"
	TxNoSavepoint Code = "tx.no_savepoint"

	// Authorization errors.
	PermissionDenied Code = "authz.denied"
	NotApprover      Code = "authz.not_approver"
	AlreadyDecided   Code = "authz.already_decided"
	OpNotFound       Code = "authz.op_not_found"
	NoApproval       Code = "authz.no_approval"
	AuthFailed       Code = "authz.auth_failed"

	// Catalog errors.
	TableExists      Code = "catalog.table_exists"
	TableNotFound    Code = "catalog.table_not_found"
	ColumnNotFound   Code = "catalog.column_not_found"
	AnnTableExists   Code = "catalog.ann_table_exists"
	AnnTableNotFound Code = "catalog.ann_table_not_found"
	SchemaMismatch   Code = "catalog.schema_mismatch"

	// Annotation errors.
	NoAnnotationTable Code = "annotation.no_table"
	EmptyRegion       Code = "annotation.empty_region"
	SystemManaged     Code = "annotation.system_managed"

	// Value errors.
	TypeMismatch Code = "value.type_mismatch"
	BadEncoding  Code = "value.bad_encoding"

	// Storage-fault errors: the disk lied or can no longer be trusted.
	PageCorrupt  Code = "storage.page_corrupt"
	WALCorrupt   Code = "storage.wal_corrupt"
	SyncPoisoned Code = "storage.sync_poisoned"

	// Context errors.
	Canceled         Code = "ctx.canceled"
	DeadlineExceeded Code = "ctx.deadline"

	// Network-server errors (originate in internal/server, not mapped from
	// sentinels).
	NetAuthRequired  Code = "net.auth_required"
	NetProtocol      Code = "net.protocol"
	NetFrameTooLarge Code = "net.frame_too_large"
	NetConnLimit     Code = "net.conn_limit"
	NetIdleTimeout   Code = "net.idle_timeout"
	NetShutdown      Code = "net.shutdown"
	NetUnknownStmt   Code = "net.unknown_stmt"
	NetUnknownPortal Code = "net.unknown_portal"

	// Internal is the fallback for errors no code covers.
	Internal Code = "internal"
)

// Category returns the code's coarse class — the segment before the first
// dot ("tx" for "tx.done"). Internal and OK are their own categories.
func (c Code) Category() string {
	if i := strings.IndexByte(string(c), '.'); i >= 0 {
		return string(c[:i])
	}
	return string(c)
}

// String returns the code itself.
func (c Code) String() string { return string(c) }

// codeOf pairs a sentinel error with its code. Order matters only for
// errors that wrap each other; the sentinels below are all distinct.
var sentinels = []struct {
	err  error
	code Code
}{
	{sqlparse.ErrSyntax, Syntax},

	{exec.ErrBadArgs, BadArgs},
	{exec.ErrUnsupported, Unsupported},
	{exec.ErrUnknownColumn, UnknownColumn},
	{exec.ErrAmbiguousColumn, AmbiguousColumn},
	{exec.ErrSpill, Spill},

	{exec.ErrTxDone, TxDone},
	{exec.ErrTxOpen, TxOpen},
	{exec.ErrNoTx, TxNone},
	{exec.ErrNoSavepoint, TxNoSavepoint},

	{authz.ErrPermissionDenied, PermissionDenied},
	{authz.ErrNotApprover, NotApprover},
	{authz.ErrAlreadyDecided, AlreadyDecided},
	{authz.ErrOpNotFound, OpNotFound},
	{authz.ErrNoApproval, NoApproval},
	{authz.ErrAuthFailed, AuthFailed},

	{catalog.ErrTableExists, TableExists},
	{catalog.ErrTableNotFound, TableNotFound},
	{catalog.ErrColumnNotFound, ColumnNotFound},
	{catalog.ErrAnnotationTableExists, AnnTableExists},
	{catalog.ErrAnnotationTableNotFound, AnnTableNotFound},
	{catalog.ErrSchemaMismatch, SchemaMismatch},

	{annotation.ErrNoAnnotationTable, NoAnnotationTable},
	{annotation.ErrEmptyRegion, EmptyRegion},
	{annotation.ErrSystemManaged, SystemManaged},

	{value.ErrTypeMismatch, TypeMismatch},
	{value.ErrBadEncoding, BadEncoding},

	{pager.ErrPageCorrupt, PageCorrupt},
	{heap.ErrPageCorrupt, PageCorrupt},
	{wal.ErrCorrupt, WALCorrupt},
	{pager.ErrSyncPoisoned, SyncPoisoned},
	{wal.ErrSyncPoisoned, SyncPoisoned},

	{context.Canceled, Canceled},
	{context.DeadlineExceeded, DeadlineExceeded},
}

// FromError classifies err. Nil maps to OK; an error wrapping a known
// sentinel maps to that sentinel's code; anything else maps to Internal.
func FromError(err error) Code {
	if err == nil {
		return OK
	}
	for _, s := range sentinels {
		if errors.Is(err, s.err) {
			return s.code
		}
	}
	return Internal
}

// Valid reports whether c is a code this package defines (OK included).
// Wire decoding uses it to reject made-up codes without failing the frame:
// an unknown code degrades to Internal rather than erroring, so old clients
// survive new server codes.
func Valid(c Code) bool {
	if c == OK || c == Internal {
		return true
	}
	_, ok := byName[c]
	return ok
}

// byName indexes every non-OK, non-Internal code.
var byName = func() map[Code]struct{} {
	m := make(map[Code]struct{}, len(sentinels)+8)
	for _, s := range sentinels {
		m[s.code] = struct{}{}
	}
	for _, c := range []Code{
		NetAuthRequired, NetProtocol, NetFrameTooLarge, NetConnLimit,
		NetIdleTimeout, NetShutdown, NetUnknownStmt, NetUnknownPortal,
	} {
		m[c] = struct{}{}
	}
	return m
}()
