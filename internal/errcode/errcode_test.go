package errcode

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"bdbms/internal/authz"
	"bdbms/internal/catalog"
	"bdbms/internal/exec"
	"bdbms/internal/pager"
	"bdbms/internal/sqlparse"
)

func TestFromErrorMapsEverySentinel(t *testing.T) {
	for _, s := range sentinels {
		if got := FromError(s.err); got != s.code {
			t.Errorf("FromError(%v) = %q, want %q", s.err, got, s.code)
		}
		// Wrapped sentinels classify identically: codes must survive the
		// fmt.Errorf("%w") chains the executor builds.
		wrapped := fmt.Errorf("outer context: %w", s.err)
		if got := FromError(wrapped); got != s.code {
			t.Errorf("FromError(wrapped %v) = %q, want %q", s.err, got, s.code)
		}
	}
}

func TestFromErrorFallbacks(t *testing.T) {
	if got := FromError(nil); got != OK {
		t.Errorf("FromError(nil) = %q, want OK", got)
	}
	if got := FromError(errors.New("novel failure")); got != Internal {
		t.Errorf("FromError(unknown) = %q, want Internal", got)
	}
}

func TestSpecificMappings(t *testing.T) {
	cases := []struct {
		err  error
		code Code
	}{
		{sqlparse.ErrSyntax, Syntax},
		{exec.ErrBadArgs, BadArgs},
		{exec.ErrTxDone, TxDone},
		{pager.ErrPageCorrupt, PageCorrupt},
		{authz.ErrPermissionDenied, PermissionDenied},
		{authz.ErrAuthFailed, AuthFailed},
		{catalog.ErrTableNotFound, TableNotFound},
		{context.Canceled, Canceled},
	}
	for _, c := range cases {
		if got := FromError(c.err); got != c.code {
			t.Errorf("FromError(%v) = %q, want %q", c.err, got, c.code)
		}
	}
}

func TestCategory(t *testing.T) {
	cases := []struct {
		code Code
		cat  string
	}{
		{TxDone, "tx"},
		{Syntax, "parse"},
		{PageCorrupt, "storage"},
		{NetShutdown, "net"},
		{Internal, "internal"},
		{OK, ""},
	}
	for _, c := range cases {
		if got := c.code.Category(); got != c.cat {
			t.Errorf("%q.Category() = %q, want %q", c.code, got, c.cat)
		}
	}
}

func TestCodesAreUniqueAndStable(t *testing.T) {
	// Two different sentinels may share a code only when they mean the same
	// failure class (the page-corrupt and sync-poisoned pairs); otherwise a
	// duplicate constant value is a bug.
	byCode := map[Code][]error{}
	for _, s := range sentinels {
		byCode[s.code] = append(byCode[s.code], s.err)
	}
	allowedShared := map[Code]bool{PageCorrupt: true, SyncPoisoned: true}
	for code, errs := range byCode {
		if len(errs) > 1 && !allowedShared[code] {
			t.Errorf("code %q maps from %d sentinels: %v", code, len(errs), errs)
		}
	}
}

func TestValid(t *testing.T) {
	for _, c := range []Code{OK, Internal, TxDone, NetShutdown, NetConnLimit} {
		if !Valid(c) {
			t.Errorf("Valid(%q) = false, want true", c)
		}
	}
	if Valid(Code("made.up")) {
		t.Error(`Valid("made.up") = true, want false`)
	}
}
