package bdbms

// docs/SQL.md is executable documentation: every ```sql block is run, top
// to bottom, against one fresh in-memory database as the admin user, and
// every statement of a ```sql-error block must be rejected. A failure names
// the file, line and statement, so a stale example breaks the build with a
// pointer to the exact paragraph to fix.

import (
	"strings"
	"testing"

	"bdbms/internal/doccheck"
	"bdbms/internal/sqlparse"
)

func TestDocsSQLExecutes(t *testing.T) {
	snippets, err := doccheck.Snippets("docs/SQL.md")
	if err != nil {
		t.Fatal(err)
	}
	db := Open()
	defer db.Close()
	s := db.Session("admin")
	ranSQL, ranErr := 0, 0
	for _, sn := range snippets {
		switch sn.Lang {
		case "sql":
			for _, stmt := range sqlparse.SplitStatements(sn.Body) {
				if strings.TrimSpace(stmt) == "" {
					continue
				}
				if _, err := s.Exec(stmt); err != nil {
					t.Fatalf("%s:%d: documented statement failed: %q: %v", sn.File, sn.Line, stmt, err)
				}
				ranSQL++
			}
		case "sql-error":
			for _, stmt := range sqlparse.SplitStatements(sn.Body) {
				if strings.TrimSpace(stmt) == "" {
					continue
				}
				if _, err := s.Exec(stmt); err == nil {
					t.Fatalf("%s:%d: statement documented as rejected succeeded: %q", sn.File, sn.Line, stmt)
				}
				ranErr++
			}
		}
	}
	if ranSQL < 30 {
		t.Errorf("only %d documented statements executed; docs/SQL.md lost its examples", ranSQL)
	}
	if ranErr == 0 {
		t.Error("no rejection examples executed")
	}
}
