// Package bdbms benchmarks regenerate the paper's evaluation as Go
// benchmarks: one Benchmark per experiment E1-E9 of DESIGN.md plus the
// ablations it calls out. cmd/bdbms-bench prints the corresponding
// paper-style tables; EXPERIMENTS.md records a captured run.
package bdbms

import (
	"context"
	"fmt"
	"testing"
	"time"

	"math/rand"
	"sync"
	"sync/atomic"

	"bdbms/internal/annotation"
	"bdbms/internal/biogen"
	"bdbms/internal/btree"
	"bdbms/internal/dependency"
	"bdbms/internal/provenance"
	"bdbms/internal/rtree"
	"bdbms/internal/sbctree"
	"bdbms/internal/spgist"
	"bdbms/internal/stringbtree"
	"bdbms/internal/value"
)

// --- shared workload builders -------------------------------------------------------------

func benchStructures(n int) []string {
	return biogen.New(11).SecondaryStructures(n, 256, 768, 14)
}

func buildSBC(seqs []string) *sbctree.Index {
	ix := sbctree.New()
	for i, s := range seqs {
		ix.Insert(int64(i+1), s)
	}
	return ix
}

func buildStringBTree(seqs []string) *stringbtree.Index {
	ix := stringbtree.New()
	for i, s := range seqs {
		ix.Insert(int64(i+1), s)
	}
	return ix
}

// --- E1: storage reduction ------------------------------------------------------------------

func BenchmarkE1StorageReduction(b *testing.B) {
	seqs := benchStructures(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sbc := buildSBC(seqs)
		sbt := buildStringBTree(seqs)
		ratio := float64(sbt.StorageBytes()) / float64(sbc.StorageBytes())
		b.ReportMetric(ratio, "storage-reduction-x")
	}
}

// --- E2: insertion I/O ------------------------------------------------------------------------

func BenchmarkE2InsertionIO(b *testing.B) {
	seqs := benchStructures(500)
	for _, name := range []string{"StringBTree", "SBCTree"} {
		b.Run(name, func(b *testing.B) {
			var writes uint64
			for i := 0; i < b.N; i++ {
				if name == "SBCTree" {
					ix := buildSBC(seqs)
					writes = ix.IOStats().NodeWrites
				} else {
					ix := buildStringBTree(seqs)
					writes = ix.IOStats().NodeWrites
				}
			}
			b.ReportMetric(float64(writes), "node-writes")
		})
	}
}

// --- E3: search latency -----------------------------------------------------------------------

func BenchmarkE3SearchLatency(b *testing.B) {
	seqs := benchStructures(500)
	sbc := buildSBC(seqs)
	sbt := buildStringBTree(seqs)
	patterns := make([]string, 200)
	for i := range patterns {
		src := seqs[i%len(seqs)]
		start := (i * 31) % (len(src) - 16)
		patterns[i] = src[start : start+5+(i%8)]
	}
	b.Run("SBCTree/substring", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sbc.SubstringSearch(patterns[i%len(patterns)])
		}
	})
	b.Run("StringBTree/substring", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sbt.SubstringSearch(patterns[i%len(patterns)])
		}
	})
	b.Run("SBCTree/prefix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sbc.PrefixSearch(patterns[i%len(patterns)])
		}
	})
	b.Run("StringBTree/prefix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sbt.PrefixSearch(patterns[i%len(patterns)])
		}
	})
}

// --- E4: SP-GiST vs B+-tree / R-tree ------------------------------------------------------------

func BenchmarkE4SPGiSTVsBTree(b *testing.B) {
	gen := biogen.New(7)
	pts := gen.Points(20000, 10000)
	kd := spgist.New(spgist.KDTreeOps{})
	quad := spgist.New(spgist.QuadtreeOps{})
	rt := rtree.New()
	for i, p := range pts {
		kd.Insert(spgist.Point{X: p[0], Y: p[1]}, i)
		quad.Insert(spgist.Point{X: p[0], Y: p[1]}, i)
		rt.Insert(rtree.NewPoint(p[0], p[1]), i)
	}
	queries := gen.Points(512, 10000)
	b.Run("kdtree/knn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			_, _ = kd.KNN(spgist.Point{X: q[0], Y: q[1]}, 5)
		}
	})
	b.Run("rtree/knn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			rt.Nearest(q[0], q[1], 5)
		}
	})
	b.Run("kdtree/range", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			kd.Search(spgist.RangeQuery{MinX: q[0], MinY: q[1], MaxX: q[0] + 100, MaxY: q[1] + 100})
		}
	})
	b.Run("quadtree/range", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			quad.Search(spgist.RangeQuery{MinX: q[0], MinY: q[1], MaxX: q[0] + 100, MaxY: q[1] + 100})
		}
	})
	b.Run("rtree/range", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			rt.SearchAll(rtree.Rect{MinX: q[0], MinY: q[1], MaxX: q[0] + 100, MaxY: q[1] + 100})
		}
	})

	words := gen.Keywords(20000, 12)
	trie := spgist.New(spgist.TrieOps{})
	bt := btree.New(btree.DefaultOrder)
	for i, w := range words {
		trie.Insert(w, i)
		bt.Insert([]byte(w), nil)
	}
	b.Run("trie/regex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trie.Search(spgist.RegexQuery{Pattern: words[i%len(words)][:2] + ".*"})
		}
	})
	b.Run("btree/regex-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pattern := words[i%len(words)][:2] + ".*"
			bt.Ascend(func(k []byte, _ [][]byte) bool {
				spgist.MatchSimpleRegex(pattern, string(k))
				return true
			})
		}
	})
}

// --- E5: annotation storage schemes ---------------------------------------------------------------

func annotationWorkload(b *testing.B, cellLevel bool) {
	b.Helper()
	opts := Options{CellLevelAnnotations: cellLevel}
	db, err := OpenWith(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, GSequence SEQUENCE)`)
	db.MustExec(`CREATE ANNOTATION TABLE Ann ON Gene`)
	gen := biogen.New(3)
	const rows = 800
	for i := 0; i < rows; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO Gene VALUES ('%s', '%s', '%s')`,
			biogen.GeneID(i), gen.GeneName(i), gen.DNASequence(12)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.MustExec(`ADD ANNOTATION TO Gene.Ann VALUE '<Annotation>column note</Annotation>' ON (SELECT GSequence FROM Gene)`)
		db.MustExec(`SELECT GID, GSequence FROM Gene ANNOTATION(Ann) LIMIT 100`)
	}
	b.ReportMetric(float64(db.Annotations().StorageRecords())/float64(b.N), "records-per-annotation")
}

func BenchmarkE5AnnotationStorageSchemes(b *testing.B) {
	b.Run("rectangle", func(b *testing.B) { annotationWorkload(b, false) })
	b.Run("per-cell", func(b *testing.B) { annotationWorkload(b, true) })
}

// --- E6: annotation propagation -------------------------------------------------------------------

func e6Database(b *testing.B, rows int) *DB {
	b.Helper()
	db := Open()
	db.MustExec(`CREATE TABLE DB1_Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, GSequence SEQUENCE)`)
	db.MustExec(`CREATE TABLE DB2_Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, GSequence SEQUENCE)`)
	db.MustExec(`CREATE ANNOTATION TABLE GAnnotation ON DB1_Gene`)
	db.MustExec(`CREATE ANNOTATION TABLE GAnnotation ON DB2_Gene`)
	gen := biogen.New(5)
	for i := 0; i < rows; i++ {
		id, name, seq := biogen.GeneID(i), gen.GeneName(i), gen.DNASequence(24)
		db.MustExec(fmt.Sprintf(`INSERT INTO DB1_Gene VALUES ('%s', '%s', '%s')`, id, name, seq))
		if i%2 == 0 {
			db.MustExec(fmt.Sprintf(`INSERT INTO DB2_Gene VALUES ('%s', '%s', '%s')`, id, name, seq))
		}
	}
	db.MustExec(`ADD ANNOTATION TO DB1_Gene.GAnnotation VALUE '<Annotation>obtained from RegulonDB</Annotation>' ON (SELECT * FROM DB1_Gene)`)
	db.MustExec(`ADD ANNOTATION TO DB2_Gene.GAnnotation VALUE '<Annotation>obtained from GenoBase</Annotation>' ON (SELECT GSequence FROM DB2_Gene)`)
	return db
}

func BenchmarkE6AnnotationPropagation(b *testing.B) {
	db := e6Database(b, 500)
	defer db.Close()
	query := `SELECT GID, GName, GSequence FROM DB1_Gene ANNOTATION(GAnnotation)
	          INTERSECT
	          SELECT GID, GName, GSequence FROM DB2_Gene ANNOTATION(GAnnotation)`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(query); err != nil {
			b.Fatal(err)
		}
	}
}

// TestE6ASQLEquivalence checks the single A-SQL statement returns exactly the
// common genes with annotations consolidated from both tables.
func TestE6ASQLEquivalence(t *testing.T) {
	db := Open()
	defer db.Close()
	db.MustExec(`CREATE TABLE DB1_Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)`)
	db.MustExec(`CREATE TABLE DB2_Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)`)
	db.MustExec(`CREATE ANNOTATION TABLE A ON DB1_Gene`)
	db.MustExec(`CREATE ANNOTATION TABLE A ON DB2_Gene`)
	db.MustExec(`INSERT INTO DB1_Gene VALUES ('g1', 'AAA'), ('g2', 'CCC')`)
	db.MustExec(`INSERT INTO DB2_Gene VALUES ('g1', 'AAA'), ('g3', 'TTT')`)
	db.MustExec(`ADD ANNOTATION TO DB1_Gene.A VALUE '<Annotation>from DB1</Annotation>' ON (SELECT * FROM DB1_Gene)`)
	db.MustExec(`ADD ANNOTATION TO DB2_Gene.A VALUE '<Annotation>from DB2</Annotation>' ON (SELECT * FROM DB2_Gene)`)
	res := db.MustExec(`SELECT GID, GSequence FROM DB1_Gene ANNOTATION(A)
		INTERSECT SELECT GID, GSequence FROM DB2_Gene ANNOTATION(A)`)
	if len(res.Rows) != 1 || res.Rows[0].Values[0].Text() != "g1" {
		t.Fatalf("intersection = %v", res.Rows)
	}
	if n := len(res.Rows[0].AnnotationsFlat()); n != 2 {
		t.Errorf("annotations from both sides = %d, want 2", n)
	}
}

// --- E7: dependency cascade -------------------------------------------------------------------------

func BenchmarkE7OutdatedBitmaps(b *testing.B) {
	bm := dependency.NewBitmap("Protein", 4)
	for row := int64(1); row <= 200; row++ {
		bm.Set(row*10, 3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bm.CompressedSize(10000)
	}
	b.ReportMetric(bm.CompressionRatio(10000), "compression-x")
}

// TestE7DependencyCascade verifies the Figure 9 cascade shape at the facade level.
func TestE7DependencyCascade(t *testing.T) {
	db := Open()
	defer db.Close()
	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)`)
	db.MustExec(`CREATE TABLE Protein (PName TEXT, GID TEXT, PSequence SEQUENCE, PFunction TEXT)`)
	db.MustExec(`CREATE INDEX ON Protein (GID)`)
	db.MustExec(`INSERT INTO Gene VALUES ('JW0080', 'ATGATG')`)
	db.MustExec(`INSERT INTO Protein VALUES ('pmraW', 'JW0080', 'MX', 'Cell wall formation')`)
	dep := db.Dependencies()
	dep.AddRule(dependency.Rule{
		Sources: []dependency.ColumnRef{{Table: "Gene", Column: "GSequence"}},
		Targets: []dependency.ColumnRef{{Table: "Protein", Column: "PSequence"}},
		Proc: dependency.Procedure{Name: "Prediction tool P", Executable: true,
			Apply: func(in []value.Value) (value.Value, error) {
				return value.NewSequence(biogen.Translate(in[0].Text())), nil
			}},
		Link: &dependency.Link{SourceColumn: "GID", TargetColumn: "GID"},
	})
	dep.AddRule(dependency.Rule{
		Sources: []dependency.ColumnRef{{Table: "Protein", Column: "PSequence"}},
		Targets: []dependency.ColumnRef{{Table: "Protein", Column: "PFunction"}},
		Proc:    dependency.Procedure{Name: "Lab experiment", Executable: false},
	})
	db.MustExec(`UPDATE Gene SET GSequence = 'CCCGGGAAA' WHERE GID = 'JW0080'`)
	if dep.IsOutdated("Protein", 1, "PSequence") {
		t.Error("PSequence is recomputable and must not be outdated")
	}
	if !dep.IsOutdated("Protein", 1, "PFunction") {
		t.Error("PFunction must be outdated")
	}
	seq, _ := db.Storage().Tables()[1].GetColumn(1, "PSequence")
	if seq.Text() != biogen.Translate("CCCGGGAAA") {
		t.Errorf("PSequence not recomputed: %q", seq.Text())
	}
}

// --- E8: approval overhead -----------------------------------------------------------------------------

func BenchmarkE8ApprovalOverhead(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			db := Open()
			defer db.Close()
			db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)`)
			if mode == "on" {
				db.MustExec(`START CONTENT APPROVAL ON Gene APPROVED BY labadmin`)
			}
			gen := biogen.New(4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.MustExec(fmt.Sprintf(`INSERT INTO Gene VALUES ('G%d', '%s')`, i, gen.DNASequence(20)))
			}
		})
	}
}

// TestE8ApprovalInverse verifies the inverse-statement semantics end to end.
func TestE8ApprovalInverse(t *testing.T) {
	db := Open()
	defer db.Close()
	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)`)
	db.MustExec(`START CONTENT APPROVAL ON Gene APPROVED BY labadmin`)
	db.Authorization().MakeAdmin("labadmin")
	db.MustExec(`INSERT INTO Gene VALUES ('JW0080', 'ATG')`)
	for _, op := range db.Authorization().Pending("Gene") {
		if err := db.Authorization().Approve(op.ID, "labadmin"); err != nil {
			t.Fatal(err)
		}
	}
	db.MustExec(`UPDATE Gene SET GSequence = 'BAD' WHERE GID = 'JW0080'`)
	pending := db.Authorization().Pending("Gene")
	if len(pending) != 1 {
		t.Fatalf("pending = %d", len(pending))
	}
	admin := db.Session("labadmin")
	if _, err := admin.Exec(fmt.Sprintf("DISAPPROVE OPERATION %d", pending[0].ID)); err != nil {
		t.Fatal(err)
	}
	res := db.MustExec(`SELECT GSequence FROM Gene WHERE GID = 'JW0080'`)
	if res.Rows[0].Values[0].Text() != "ATG" {
		t.Errorf("rollback failed: %q", res.Rows[0].Values[0].Text())
	}
}

// --- E9: provenance ---------------------------------------------------------------------------------------

func BenchmarkE9ProvenanceLookup(b *testing.B) {
	db := Open()
	defer db.Close()
	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)`)
	gen := biogen.New(6)
	const rows = 500
	for i := 0; i < rows; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO Gene VALUES ('%s', '%s')`, biogen.GeneID(i), gen.DNASequence(12)))
	}
	prov := db.Provenance()
	prov.RegisterAgent("integrator")
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	prov.Attach("integrator", "Gene",
		provenance.Record{Source: "S1", Action: provenance.ActionCopy, Time: base},
		[]annotation.Region{annotation.RowsRegion("Gene", 1, rows, 2)})
	prov.Attach("integrator", "Gene",
		provenance.Record{Source: "S3", Action: provenance.ActionOverwrite, Time: base.AddDate(0, 1, 0)},
		[]annotation.Region{annotation.ColumnRegion("Gene", 1, rows)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prov.SourceAt("Gene", int64(i%rows)+1, 1, base.AddDate(0, 6, 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestE9ProvenanceQueries verifies the Figure 8 source-at-time semantics at
// the facade level.
func TestE9ProvenanceQueries(t *testing.T) {
	db := Open()
	defer db.Close()
	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)`)
	db.MustExec(`INSERT INTO Gene VALUES ('JW0080', 'ATG')`)
	prov := db.Provenance()
	prov.RegisterAgent("loader")
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	prov.Attach("loader", "Gene", provenance.Record{Source: "S2", Action: provenance.ActionCopy, Time: base},
		[]annotation.Region{annotation.RowsRegion("Gene", 1, 1, 2)})
	prov.Attach("loader", "Gene", provenance.Record{Source: "S3", Action: provenance.ActionOverwrite, Time: base.AddDate(0, 1, 0)},
		[]annotation.Region{annotation.ColumnRegion("Gene", 1, 1)})
	e, err := prov.SourceAt("Gene", 1, 1, base.AddDate(0, 0, 10))
	if err != nil || e.Record.Source != "S2" {
		t.Fatalf("early source = %+v, %v", e.Record, err)
	}
	e, err = prov.SourceAt("Gene", 1, 1, base.AddDate(0, 2, 0))
	if err != nil || e.Record.Source != "S3" {
		t.Fatalf("late source = %+v, %v", e.Record, err)
	}
}

// --- query executor: pushdown, index scans, hash joins ------------------------------------------------------

// execBenchSession returns an admin session with the optimizer toggled; the
// "naive" sub-benchmarks measure the materialize-then-filter baseline the
// streaming executor replaced.
func execBenchSession(db *DB, naive bool) *Session {
	s := db.Session("admin")
	s.NoOptimize = naive
	return s
}

// BenchmarkSelectPushdown measures an indexed point query against a 10k-row
// table: the planner turns the pushed-down equality into a primary-key
// B+-tree probe instead of a full heap scan.
func BenchmarkSelectPushdown(b *testing.B) {
	db := Open()
	defer db.Close()
	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, Score INT)`)
	gen := biogen.New(9)
	const rows = 10000
	for i := 0; i < rows; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO Gene VALUES ('%s', '%s', %d)`,
			biogen.GeneID(i), gen.GeneName(i), i%97))
	}
	queries := make([]string, 64)
	for i := range queries {
		queries[i] = fmt.Sprintf(`SELECT GID, GName FROM Gene WHERE GID = '%s'`, biogen.GeneID(i*151%rows))
	}
	for _, mode := range []string{"naive", "planned"} {
		b.Run(mode, func(b *testing.B) {
			s := execBenchSession(db, mode == "naive")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := s.Exec(queries[i%len(queries)])
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 1 {
					b.Fatalf("point query returned %d rows", len(res.Rows))
				}
			}
		})
	}
}

// BenchmarkHashJoin measures a two-table equi-join over 1k x 1k rows: the
// planner replaces the 1M-row cross product with a hash join on the join key.
func BenchmarkHashJoin(b *testing.B) {
	db := Open()
	defer db.Close()
	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, Score INT)`)
	db.MustExec(`CREATE TABLE Protein (PID TEXT NOT NULL PRIMARY KEY, GID TEXT, PLen INT)`)
	const rows = 1000
	for i := 0; i < rows; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO Gene VALUES ('%s', %d)`, biogen.GeneID(i), i%53))
		db.MustExec(fmt.Sprintf(`INSERT INTO Protein VALUES ('P%04d', '%s', %d)`,
			i, biogen.GeneID((i*7)%rows), i%211))
	}
	query := `SELECT Gene.GID, PID FROM Gene, Protein WHERE Gene.GID = Protein.GID AND PLen < 100`
	for _, mode := range []string{"naive", "planned"} {
		b.Run(mode, func(b *testing.B) {
			s := execBenchSession(db, mode == "naive")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := s.Exec(query)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) == 0 {
					b.Fatal("join returned no rows")
				}
			}
		})
	}
}

// loadStarSchema builds a skewed star: a 100k-row fact table, a 1k-row
// attribute dimension holding ten rows per category key (so joining it
// multiplies cardinality), and a 100-row dimension with exactly one row
// tagged 'hot' that only 1% of the fact rows point at. Running one query per
// table warms the lazily-built planner statistics so both benchmark modes
// plan from the same snapshot.
func loadStarSchema(b *testing.B, db *DB) {
	b.Helper()
	db.MustExec(`CREATE TABLE Fact (FID INT NOT NULL PRIMARY KEY, D1 TEXT, D2 TEXT, V INT)`)
	db.MustExec(`CREATE TABLE Dim1 (D1ID INT NOT NULL PRIMARY KEY, Cat TEXT, Name TEXT)`)
	db.MustExec(`CREATE TABLE Dim2 (D2ID TEXT NOT NULL PRIMARY KEY, Tag TEXT)`)
	ins, err := db.Prepare(`INSERT INTO Fact VALUES (?, ?, ?, ?)`)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		if _, err := ins.Exec(i, fmt.Sprintf("A%03d", i%100), fmt.Sprintf("B%03d", i%100), i%7919); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO Dim1 VALUES (%d, 'A%03d', 'attr%d')`, i, i%100, i))
	}
	for i := 0; i < 100; i++ {
		tag := "cold"
		if i == 42 {
			tag = "hot"
		}
		db.MustExec(fmt.Sprintf(`INSERT INTO Dim2 VALUES ('B%03d', '%s')`, i, tag))
	}
	s := db.Session("admin")
	for _, q := range []string{
		`SELECT COUNT(*) FROM Fact WHERE V = -1`,
		`SELECT COUNT(*) FROM Dim1 WHERE Name = ''`,
		`SELECT COUNT(*) FROM Dim2 WHERE Tag = ''`,
	} {
		if _, err := s.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoin3Way measures a three-way star join whose selective predicate
// sits on the LAST table in FROM order: syntactic ordering joins the full
// 100k-row fact table to the multiplying attribute dimension first — a
// million-row intermediate — before the selective dimension discards 99% of
// it, while the cost-based order applies the selective join first so no
// intermediate exceeds the 1k fact rows that survive it.
func BenchmarkJoin3Way(b *testing.B) {
	db := Open()
	defer db.Close()
	loadStarSchema(b, db)
	query := `SELECT d1.Name, f.V FROM Fact f, Dim1 d1, Dim2 d2 WHERE f.D1 = d1.Cat AND f.D2 = d2.D2ID AND d2.Tag = 'hot'`
	for _, mode := range []string{"syntactic", "cost-based"} {
		b.Run(mode, func(b *testing.B) {
			s := db.Session("admin")
			s.NoReorder = mode == "syntactic"
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := s.Exec(query)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 10000 {
					b.Fatalf("join returned %d rows, want 10000", len(res.Rows))
				}
			}
		})
	}
}

// BenchmarkPreparedSelect measures prepared re-execution against
// parse-per-call Exec on an indexed point query: the prepared path skips the
// parser and reuses the cached physical plan (a deferred B+-tree probe bound
// to the `?` argument), so each execution only re-binds and probes.
func BenchmarkPreparedSelect(b *testing.B) {
	db := Open()
	defer db.Close()
	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, Score INT)`)
	gen := biogen.New(9)
	const rows = 10000
	ins, err := db.Prepare(`INSERT INTO Gene VALUES (?, ?, ?)`)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := ins.Exec(biogen.GeneID(i), gen.GeneName(i), i%97); err != nil {
			b.Fatal(err)
		}
	}
	ids := make([]string, 64)
	for i := range ids {
		ids[i] = biogen.GeneID(i * 151 % rows)
	}
	b.Run("exec-per-call", func(b *testing.B) {
		s := db.Session("admin")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := s.Exec(fmt.Sprintf(`SELECT GID, GName FROM Gene WHERE GID = '%s'`, ids[i%len(ids)]))
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 1 {
				b.Fatalf("point query returned %d rows", len(res.Rows))
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		stmt, err := db.Session("admin").Prepare(`SELECT GID, GName FROM Gene WHERE GID = ?`)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := stmt.Exec(ids[i%len(ids)])
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 1 {
				b.Fatalf("point query returned %d rows", len(res.Rows))
			}
		}
	})
}

// BenchmarkQueryFirstRow measures time-to-first-row of a full-table SELECT
// through the streaming cursor versus draining the materialized Exec result,
// the visible win of the lazy Rows API.
func BenchmarkQueryFirstRow(b *testing.B) {
	db := Open()
	defer db.Close()
	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, Score INT)`)
	ins, err := db.Prepare(`INSERT INTO Gene VALUES (?, ?, ?)`)
	if err != nil {
		b.Fatal(err)
	}
	gen := biogen.New(12)
	const rows = 5000
	for i := 0; i < rows; i++ {
		if _, err := ins.Exec(biogen.GeneID(i), gen.GeneName(i), i%97); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("cursor", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := db.Query(context.Background(), `SELECT GID, GName FROM Gene`)
			if err != nil {
				b.Fatal(err)
			}
			if !r.Next() {
				b.Fatal("no rows")
			}
			r.Close()
		}
	})
	b.Run("exec-materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := db.Exec(`SELECT GID, GName FROM Gene`)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != rows {
				b.Fatal("short result")
			}
		}
	})
}

// BenchmarkDistinct measures the DISTINCT deduplication path, whose row keys
// are built in a reused buffer instead of a per-row strings.Join.
func BenchmarkDistinct(b *testing.B) {
	db := Open()
	defer db.Close()
	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, Score INT)`)
	gen := biogen.New(10)
	for i := 0; i < 5000; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO Gene VALUES ('%s', '%s', %d)`,
			biogen.GeneID(i), gen.GeneName(i%40), i%23))
	}
	s := db.Session("admin")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Exec(`SELECT DISTINCT GName, Score FROM Gene`)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// --- ablations --------------------------------------------------------------------------------------------

// BenchmarkAblationSBCSecondLevel compares the SBC-tree with and without its
// R-tree second level on single-run queries (DESIGN.md section 4).
func BenchmarkAblationSBCSecondLevel(b *testing.B) {
	seqs := benchStructures(500)
	with := sbctree.New()
	without := sbctree.NewWithoutSecondLevel()
	for i, s := range seqs {
		with.Insert(int64(i+1), s)
		without.Insert(int64(i+1), s)
	}
	b.Run("with-rtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			with.SubstringSearch("HHHHHHHHHHHHHHHHHHHH")
		}
	})
	b.Run("linear-runs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			without.SubstringSearch("HHHHHHHHHHHHHHHHHHHH")
		}
	})
}

// BenchmarkAblationBufferPool measures insertion I/O sensitivity to the buffer
// pool size (E2 sweep).
func BenchmarkAblationBufferPool(b *testing.B) {
	for _, pool := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("pool-%d", pool), func(b *testing.B) {
			gen := biogen.New(2)
			for i := 0; i < b.N; i++ {
				db, _ := OpenWith(Options{PoolSize: pool})
				db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)`)
				for j := 0; j < 500; j++ {
					db.MustExec(fmt.Sprintf(`INSERT INTO Gene VALUES ('%s', '%s')`, biogen.GeneID(j), gen.DNASequence(40)))
				}
				stats := db.Storage().PagerStats()
				b.ReportMetric(float64(stats.Reads+stats.Writes), "page-ios")
				db.Close()
			}
		})
	}
}

// --- transactions ----------------------------------------------------------------------------

// BenchmarkTxCommit measures a whole explicit transaction — Begin, K
// statements, Commit — per loop iteration, tracking the framing, undo-log
// and lock handoff cost at different transaction sizes.
func BenchmarkTxCommit(b *testing.B) {
	for _, size := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("stmts-%d", size), func(b *testing.B) {
			db := Open()
			defer db.Close()
			db.MustExec(`CREATE TABLE Acct (ID INT NOT NULL PRIMARY KEY, Bal INT)`)
			for i := 0; i < size; i++ {
				db.MustExec(fmt.Sprintf(`INSERT INTO Acct VALUES (%d, 100)`, i))
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, err := db.Begin(ctx)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < size; j++ {
					if _, err := tx.Query(ctx, `UPDATE Acct SET Bal = ? WHERE ID = ?`, i&0xff, j); err != nil {
						b.Fatal(err)
					}
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAutoCommitOverhead tracks what the implicit per-statement
// transaction costs a bare INSERT: the undo-log hook plus the
// TxBegin/TxCommit framing records, against the same inserts amortized
// inside one big explicit transaction.
func BenchmarkAutoCommitOverhead(b *testing.B) {
	b.Run("autocommit", func(b *testing.B) {
		db := Open()
		defer db.Close()
		db.MustExec(`CREATE TABLE Events (N INT NOT NULL PRIMARY KEY, T TEXT)`)
		ins, err := db.Prepare(`INSERT INTO Events VALUES (?, ?)`)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ins.Exec(i, "event"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batched-tx", func(b *testing.B) {
		db := Open()
		defer db.Close()
		db.MustExec(`CREATE TABLE Events (N INT NOT NULL PRIMARY KEY, T TEXT)`)
		ctx := context.Background()
		tx, err := db.Begin(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tx.Query(ctx, `INSERT INTO Events VALUES (?, ?)`, i, "event"); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	})
}

// --- MVCC: reader throughput under a streaming writer -------------------------------------------

// seedFeedTable creates and fills the table the reader/writer-independence
// harnesses share.
func seedFeedTable(tb testing.TB, db *DB, rows int) {
	tb.Helper()
	db.MustExec(`CREATE TABLE Feed (ID INT NOT NULL PRIMARY KEY, V TEXT)`)
	ctx := context.Background()
	tx, err := db.Begin(ctx)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := tx.Query(ctx, `INSERT INTO Feed VALUES (?, ?)`, i, "seed"); err != nil {
			tb.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		tb.Fatal(err)
	}
}

// countPointReads runs `readers` goroutines doing prepared point SELECTs over
// the seeded key range for the window and returns the completed-read total.
func countPointReads(db *DB, rows, readers int, window time.Duration) (int64, error) {
	var total int64
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	deadline := time.Now().Add(window)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			stmt, err := db.Session(fmt.Sprintf("reader%d", r)).Prepare(`SELECT V FROM Feed WHERE ID = ?`)
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(int64(r) + 1))
			n := int64(0)
			for time.Now().Before(deadline) {
				res, err := stmt.Exec(rng.Intn(rows))
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != 1 {
					errs <- fmt.Errorf("point read returned %d rows", len(res.Rows))
					return
				}
				n++
			}
			atomic.AddInt64(&total, n)
			errs <- nil
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return total, nil
}

// streamInserts writes prepared single-row INSERTs until stop closes, taking
// keys from *nextKey (above the seeded range). pace spaces the inserts out: a
// steady stream rather than a tight loop, so on small machines the comparison
// in TestReaderThroughputFlatUnderWriter measures lock interference — the
// property MVCC is supposed to deliver — and not the writer's raw CPU share
// (on a single core an unthrottled writer takes its scheduler slice from the
// readers no matter how the engine locks).
func streamInserts(db *DB, nextKey *int64, stop <-chan struct{}, pace time.Duration) error {
	ins, err := db.Session("writer").Prepare(`INSERT INTO Feed VALUES (?, ?)`)
	if err != nil {
		return err
	}
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		if _, err := ins.Exec(*nextKey, "streamed"); err != nil {
			return err
		}
		*nextKey++
		if pace > 0 {
			time.Sleep(pace)
		}
	}
}

// TestReaderThroughputFlatUnderWriter is the PR's headline acceptance check:
// point-read throughput with a writer streaming inserts must stay within 20%
// of the reader-only baseline — readers run on MVCC snapshots and take no
// latches, so the writer costs them CPU share at most, never lock waits.
// Wall-clock throughput is scheduler-noisy, so the comparison retries a few
// times before declaring a regression.
func TestReaderThroughputFlatUnderWriter(t *testing.T) {
	const rows = 5000
	const readers = 4
	const window = 250 * time.Millisecond
	db := Open()
	defer db.Close()
	seedFeedTable(t, db, rows)
	nextKey := int64(rows)

	const attempts = 3
	for attempt := 1; ; attempt++ {
		baseline, err := countPointReads(db, rows, readers, window)
		if err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		writerErr := make(chan error, 1)
		go func() { writerErr <- streamInserts(db, &nextKey, stop, 250*time.Microsecond) }()
		contended, err := countPointReads(db, rows, readers, window)
		close(stop)
		if werr := <-writerErr; werr != nil {
			t.Fatal(werr)
		}
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(contended) / float64(baseline)
		t.Logf("attempt %d: baseline=%d reads, under writer=%d reads, ratio=%.2f", attempt, baseline, contended, ratio)
		if ratio >= 0.80 {
			return
		}
		if attempt == attempts {
			t.Fatalf("reader throughput dropped to %.0f%% of baseline under a streaming writer (want >= 80%%)", ratio*100)
		}
	}
}

// BenchmarkReaderUnderWriterStream reports per-read latency with and without
// a concurrent writer streaming inserts into the same table.
func BenchmarkReaderUnderWriterStream(b *testing.B) {
	const rows = 5000
	for _, mode := range []string{"baseline", "writer-streaming"} {
		b.Run(mode, func(b *testing.B) {
			db := Open()
			defer db.Close()
			seedFeedTable(b, db, rows)
			if mode == "writer-streaming" {
				nextKey := int64(rows)
				stop := make(chan struct{})
				writerErr := make(chan error, 1)
				go func() { writerErr <- streamInserts(db, &nextKey, stop, 250*time.Microsecond) }()
				defer func() {
					close(stop)
					if err := <-writerErr; err != nil {
						b.Fatal(err)
					}
				}()
			}
			stmt, err := db.Session("reader").Prepare(`SELECT V FROM Feed WHERE ID = ?`)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := stmt.Exec(rng.Intn(rows))
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 1 {
					b.Fatalf("point read returned %d rows", len(res.Rows))
				}
			}
		})
	}
}

// --- streaming pipeline: Top-N, external sort, grouped aggregation with spill -------------------

// loadEventTable fills a (ID, Grp, Score) table through prepared inserts.
func loadEventTable(b *testing.B, db *DB, rows int) {
	b.Helper()
	db.MustExec(`CREATE TABLE Events (ID INT NOT NULL PRIMARY KEY, Grp TEXT, Score INT)`)
	ins, err := db.Prepare(`INSERT INTO Events VALUES (?, ?, ?)`)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := ins.Exec(i, fmt.Sprintf("g%03d", i%997), (i*7919)%100003); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOrderByLimitTopN measures ORDER BY + LIMIT 10 on a 100k-row table:
// the planner routes it through the Top-N heap operator, whose resident
// result state is O(LIMIT) — against the naive reference, which materializes
// and fully sorts all 100k rows per query.
func BenchmarkOrderByLimitTopN(b *testing.B) {
	db := Open()
	defer db.Close()
	loadEventTable(b, db, 100000)
	query := `SELECT ID, Score FROM Events ORDER BY Score DESC LIMIT 10`
	for _, mode := range []string{"naive-full-sort", "topn"} {
		b.Run(mode, func(b *testing.B) {
			s := db.Session("admin")
			s.NoOptimize = mode == "naive-full-sort"
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := s.Exec(query)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 10 {
					b.Fatalf("rows = %d", len(res.Rows))
				}
			}
		})
	}
}

// BenchmarkExternalSort measures a full ORDER BY over 100k rows through the
// streaming sort with an in-memory batch (default budget) and with a 256 KB
// budget that forces run generation + k-way merge through the spill file.
func BenchmarkExternalSort(b *testing.B) {
	for _, bench := range []struct {
		name   string
		budget int
	}{{"in-memory", 0}, {"spill-256k", 256 << 10}} {
		b.Run(bench.name, func(b *testing.B) {
			db, err := OpenWith(Options{SpillBudget: bench.budget})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			loadEventTable(b, db, 100000)
			s := db.Session("admin")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := s.Query(context.Background(), `SELECT ID FROM Events ORDER BY Score, ID`)
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for rows.Next() {
					n++
				}
				rows.Close()
				if rows.Err() != nil || n != 100000 {
					b.Fatalf("n=%d err=%v", n, rows.Err())
				}
			}
		})
	}
}

// BenchmarkGroupBySpill measures hash aggregation over 100k rows into ~1k
// groups, in memory versus under a 64 KB budget (partition spill + re-merge),
// on the vectorized batch pipeline versus the row-at-a-time scan it replaced.
func BenchmarkGroupBySpill(b *testing.B) {
	for _, bench := range []struct {
		name   string
		budget int
	}{{"in-memory", 0}, {"spill-64k", 64 << 10}} {
		for _, path := range []string{"vectorized", "row-at-a-time"} {
			b.Run(bench.name+"/"+path, func(b *testing.B) {
				db, err := OpenWith(Options{SpillBudget: bench.budget})
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				loadEventTable(b, db, 100000)
				s := db.Session("admin")
				s.NoVectorize = path == "row-at-a-time"
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := s.Exec(`SELECT Grp, COUNT(*), SUM(Score), MAX(Score) FROM Events GROUP BY Grp`)
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Rows) != 997 {
						b.Fatalf("groups = %d", len(res.Rows))
					}
				}
			})
		}
	}
}

// BenchmarkFullScanAggregate measures an ungrouped aggregate over a filtered
// 100k-row full scan — the pure scan->filter->agg shape the vectorized batch
// pipeline targets: columnar chunks, a typed comparison kernel narrowing the
// selection vector, and batch-at-a-time group consumption, against the same
// plan run row at a time.
func BenchmarkFullScanAggregate(b *testing.B) {
	db := Open()
	defer db.Close()
	loadEventTable(b, db, 100000)
	query := `SELECT COUNT(*), SUM(Score), MIN(Score), MAX(Score) FROM Events WHERE Score < 50000`
	for _, path := range []string{"vectorized", "row-at-a-time"} {
		b.Run(path, func(b *testing.B) {
			s := db.Session("admin")
			s.NoVectorize = path == "row-at-a-time"
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := s.Exec(query)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 1 || res.Rows[0].Values[0].Int() == 0 {
					b.Fatalf("bad aggregate result: %v", res.Rows)
				}
			}
		})
	}
}
