module bdbms

go 1.24
