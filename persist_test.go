package bdbms_test

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"bdbms"
)

// persistWorkload is the public-API durability workload: DDL, DML, secondary
// indexes, annotation tables and annotations.
var persistWorkload = []string{
	`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, GLen INT)`,
	`CREATE INDEX ON Gene (GLen)`,
	`INSERT INTO Gene VALUES ('JW0080', 'mraW', 945), ('JW0081', 'fruL', 189), ('JW0082', 'ftsI', 1767)`,
	`CREATE ANNOTATION TABLE Comments ON Gene`,
	`ADD ANNOTATION TO Gene.Comments VALUE 'long gene' ON (SELECT GID FROM Gene WHERE GLen > 900)`,
	`UPDATE Gene SET GName = 'fruL-renamed' WHERE GID = 'JW0081'`,
	`DELETE FROM Gene WHERE GID = 'JW0082'`,
	`INSERT INTO Gene VALUES ('JW0083', 'yabB', 327)`,
}

func renderRows(t *testing.T, rows *bdbms.Rows) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(strings.Join(rows.Columns(), ","))
	for rows.Next() {
		row := rows.Row()
		parts := make([]string, len(row.Values))
		for i, v := range row.Values {
			parts[i] = v.String()
		}
		b.WriteString("\n" + strings.Join(parts, "|"))
		var anns []string
		for _, a := range row.AnnotationsFlat() {
			anns = append(anns, fmt.Sprintf("[%s/%s/%s]", a.AnnTable, a.Author, a.PlainBody()))
		}
		sort.Strings(anns)
		b.WriteString(strings.Join(anns, ""))
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("cursor: %v", err)
	}
	return b.String()
}

// TestDataFilePersistence closes and reopens a file-backed database through
// the public API and checks the reopened database answers queries —
// streaming cursors and prepared statements included — identically to a
// database that never closed.
func TestDataFilePersistence(t *testing.T) {
	dataFile := filepath.Join(t.TempDir(), "genes.db")

	db, err := bdbms.OpenWith(bdbms.Options{DataFile: dataFile})
	if err != nil {
		t.Fatal(err)
	}
	for _, stmt := range persistWorkload {
		db.MustExec(stmt)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := bdbms.OpenWith(bdbms.Options{DataFile: dataFile})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()

	oracle := bdbms.Open()
	defer oracle.Close()
	for _, stmt := range persistWorkload {
		oracle.MustExec(stmt)
	}

	queries := []string{
		`SELECT GID, GName, GLen FROM Gene`,
		`SELECT GID FROM Gene WHERE GLen > 300`, // pushed into the recovered index
		`SELECT GID, GLen FROM Gene ANNOTATION(*) WHERE GLen > 100`,
	}
	ctx := context.Background()
	for _, q := range queries {
		wr, err := oracle.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := reopened.Query(ctx, q)
		if err != nil {
			t.Fatalf("reopened %q: %v", q, err)
		}
		want, got := renderRows(t, wr), renderRows(t, gr)
		wr.Close()
		gr.Close()
		if want != got {
			t.Errorf("%q differs after reopen\n got: %s\nwant: %s", q, got, want)
		}
	}

	// Prepared statements with index probes work against recovered trees.
	stmt, err := reopened.Prepare(`SELECT GName FROM Gene WHERE GID = ?`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Exec("JW0081")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Values[0].String() != "fruL-renamed" {
		t.Errorf("prepared probe on reopened db = %+v", res.Rows)
	}

	// The reopened database accepts further writes that survive another
	// round trip.
	reopened.MustExec(`INSERT INTO Gene VALUES ('JW0084', 'mog', 585)`)
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
	third, err := bdbms.OpenWith(bdbms.Options{DataFile: dataFile})
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	res = third.MustExec(`SELECT GID FROM Gene`)
	if len(res.Rows) != 4 {
		t.Errorf("third open sees %d rows, want 4", len(res.Rows))
	}
}

// TestDataFileFreshStartsEmpty double-checks that a brand-new data file
// yields an empty catalog rather than an error.
func TestDataFileFreshStartsEmpty(t *testing.T) {
	db, err := bdbms.OpenWith(bdbms.Options{DataFile: filepath.Join(t.TempDir(), "new.db")})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if n := len(db.Storage().Tables()); n != 0 {
		t.Errorf("fresh data file has %d tables", n)
	}
}
