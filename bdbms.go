// Package bdbms is a database management system for biological data,
// reproducing the system described in "bdbms — A Database Management System
// for Biological Data" (CIDR 2007). It extends a from-scratch embedded
// relational engine with the paper's four contributions:
//
//   - annotation and provenance management at multiple granularities,
//     queried and propagated through A-SQL (ANNOTATION, PROMOTE, AWHERE,
//     AHAVING, FILTER);
//   - local dependency tracking via procedural dependencies, with automatic
//     re-computation of executable derivations and outdated marks for the
//     rest;
//   - content-based update authorization (approval workflow with
//     automatically generated inverse statements) on top of GRANT/REVOKE;
//   - non-traditional access methods: an SP-GiST framework (trie, kd-tree,
//     point quadtree) and the SBC-tree over RLE-compressed sequences.
//
// SELECT statements run through a planned, streaming executor
// (internal/exec): the WHERE clause is decomposed into conjuncts,
// single-table predicates are pushed below the join into the table scans,
// predicates on indexed columns (primary keys and CREATE INDEX columns)
// probe the B+-tree instead of scanning the heap, and equality conjuncts
// between tables drive hash equi-joins rather than cross products.
// Annotations, provenance origins and dependency-outdated marks are attached
// lazily, only to the rows that survive filtering — so the A-SQL annotation
// machinery costs nothing on queries that do not use it.
//
// Basic usage:
//
//	db := bdbms.Open()
//	defer db.Close()
//	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)`)
//	db.MustExec(`INSERT INTO Gene VALUES ('JW0080', 'ATGATGG')`)
//	res, _ := db.Exec(`SELECT * FROM Gene ANNOTATION(*)`)
//	fmt.Println(bdbms.Render(res))
package bdbms

import (
	"fmt"
	"strings"

	"bdbms/internal/annotation"
	"bdbms/internal/authz"
	"bdbms/internal/core"
	"bdbms/internal/dependency"
	"bdbms/internal/exec"
	"bdbms/internal/pager"
	"bdbms/internal/provenance"
	"bdbms/internal/storage"
)

// Re-exported result types: queries return Results made of Rows whose cells
// carry propagated annotations.
type (
	// Result is the outcome of executing one A-SQL statement.
	Result = exec.Result
	// Row is one result row with per-column annotations.
	Row = exec.ARow
	// Session executes statements on behalf of a specific user.
	Session = exec.Session
	// Annotation is a stored annotation record.
	Annotation = annotation.Annotation
	// Region is a rectangle of annotated cells (columns x rows).
	Region = annotation.Region
)

// Options configures Open.
type Options struct {
	// DataFile, when non-empty, backs the database with a page file on disk
	// instead of memory.
	DataFile string
	// PoolSize is the buffer pool capacity in pages (0 = default).
	PoolSize int
	// CellLevelAnnotations selects the naive per-cell annotation storage
	// scheme instead of the compact rectangle scheme (used for ablations).
	CellLevelAnnotations bool
	// EnforceAuth enables GRANT/REVOKE privilege checks on every statement.
	EnforceAuth bool
}

// DB is an open bdbms database.
type DB struct {
	inner *core.DB
	pgr   pager.Pager
}

// Open creates an in-memory database with default options.
func Open() *DB {
	db, _ := OpenWith(Options{})
	return db
}

// OpenWith creates a database with the given options.
func OpenWith(opts Options) (*DB, error) {
	var pgr pager.Pager
	if opts.DataFile != "" {
		fp, err := pager.OpenFile(opts.DataFile)
		if err != nil {
			return nil, err
		}
		pgr = fp
	}
	coreOpts := core.Options{
		Pager:       pgr,
		PoolSize:    opts.PoolSize,
		EnforceAuth: opts.EnforceAuth,
	}
	if opts.CellLevelAnnotations {
		coreOpts.AnnotationStore = annotation.NewCellStore()
	}
	return &DB{inner: core.Open(coreOpts), pgr: pgr}, nil
}

// Close flushes buffered pages and closes the data file when one is used.
func (db *DB) Close() error {
	if err := db.inner.Close(); err != nil {
		return err
	}
	if db.pgr != nil {
		return db.pgr.Close()
	}
	return nil
}

// Exec runs one A-SQL statement as the admin user.
func (db *DB) Exec(sql string) (*Result, error) { return db.inner.Exec(sql) }

// ExecAll runs a semicolon-separated A-SQL script as the admin user.
func (db *DB) ExecAll(sql string) ([]*Result, error) { return db.inner.ExecAll(sql) }

// MustExec runs one statement and panics on error; convenient in examples.
func (db *DB) MustExec(sql string) *Result {
	res, err := db.Exec(sql)
	if err != nil {
		panic(fmt.Sprintf("bdbms: %v (statement: %s)", err, sql))
	}
	return res
}

// Session returns an execution session for the given user, subject to
// GRANT/REVOKE checks when the database was opened with EnforceAuth.
func (db *DB) Session(user string) *Session { return db.inner.Session(user) }

// Storage exposes the underlying storage engine (tables, indexes, I/O stats).
func (db *DB) Storage() *storage.Engine { return db.inner.Storage() }

// Annotations exposes the annotation manager.
func (db *DB) Annotations() *annotation.Manager { return db.inner.Annotations() }

// Provenance exposes the provenance manager.
func (db *DB) Provenance() *provenance.Manager { return db.inner.Provenance() }

// Dependencies exposes the dependency manager.
func (db *DB) Dependencies() *dependency.Manager { return db.inner.Dependencies() }

// Authorization exposes the authorization manager.
func (db *DB) Authorization() *authz.Manager { return db.inner.Authorization() }

// Render formats a query result as a textual grid, listing each row's
// propagated annotations beneath it — the CLI's (and the examples')
// stand-in for the visualization tool discussed in Section 3.2.
func Render(res *Result) string {
	var b strings.Builder
	if res == nil {
		return ""
	}
	if res.Message != "" {
		b.WriteString(res.Message)
		b.WriteString("\n")
	}
	if len(res.Columns) == 0 {
		return b.String()
	}
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		cells[r] = make([]string, len(row.Values))
		for c, v := range row.Values {
			s := v.String()
			if len(s) > 40 {
				s = s[:37] + "..."
			}
			cells[r][c] = s
			if c < len(widths) && len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	writeRow := func(parts []string) {
		for i, p := range parts {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(p)
			for pad := len(p); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(res.Columns)
	sep := make([]string, len(res.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for r, row := range res.Rows {
		writeRow(cells[r])
		for _, ann := range row.AnnotationsFlat() {
			fmt.Fprintf(&b, "    [%s by %s] %s\n", ann.AnnTable, ann.Author, ann.PlainBody())
		}
	}
	fmt.Fprintf(&b, "(%d row(s))\n", len(res.Rows))
	return b.String()
}
