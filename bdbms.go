// Package bdbms is a database management system for biological data,
// reproducing the system described in "bdbms — A Database Management System
// for Biological Data" (CIDR 2007). It extends a from-scratch embedded
// relational engine with the paper's four contributions:
//
//   - annotation and provenance management at multiple granularities,
//     queried and propagated through A-SQL (ANNOTATION, PROMOTE, AWHERE,
//     AHAVING, FILTER);
//   - local dependency tracking via procedural dependencies, with automatic
//     re-computation of executable derivations and outdated marks for the
//     rest;
//   - content-based update authorization (approval workflow with
//     automatically generated inverse statements) on top of GRANT/REVOKE;
//   - non-traditional access methods: an SP-GiST framework (trie, kd-tree,
//     point quadtree) and the SBC-tree over RLE-compressed sequences.
//
// # Querying
//
// The primary query API follows Go database idioms: Query returns a *Rows
// cursor that streams results row by row, and Prepare compiles a statement
// with `?` placeholders once for repeated execution:
//
//	db := bdbms.Open()
//	defer db.Close()
//	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)`)
//
//	ins, _ := db.Prepare(`INSERT INTO Gene VALUES (?, ?)`)
//	ins.Exec("JW0080", "ATGATGG")
//	ins.Exec("JW0082", "CCGGTTA")
//
//	rows, _ := db.Query(ctx, `SELECT GID, GSequence FROM Gene WHERE GID = ?`, "JW0080")
//	defer rows.Close()
//	for rows.Next() {
//		var gid, seq string
//		rows.Scan(&gid, &seq)
//		fmt.Println(gid, seq, rows.Annotations())
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Every SELECT is served from the planned iterator pipeline (internal/exec):
// the WHERE clause is decomposed into conjuncts, single-table predicates are
// pushed below the join into the table scans, predicates on indexed columns
// probe the B+-tree instead of scanning the heap, and equality conjuncts
// between tables drive hash equi-joins. The first row of an indexed point
// query is returned without materializing anything else, annotations are
// attached only to rows actually fetched, and canceling the Query context
// aborts the scan mid-flight.
//
// Blocking query shapes stream too, with bounded memory instead of full
// materialization: GROUP BY and aggregates run through hash aggregation
// with constant-size accumulators, DISTINCT and UNION through hash sets,
// and ORDER BY through an external merge sort — these operators spill to a
// temporary file when their working set exceeds Options.SpillBudget.
// INTERSECT and EXCEPT stream their left operand but hold one in-memory
// entry per distinct right-operand row (not budget-bounded). ORDER BY
// combined with LIMIT k is executed by a Top-N heap whose resident result
// state is O(k) regardless of table size, and ORDER BY may name columns
// that are not in the SELECT list.
//
// Prepared statements are parsed once and — for streamable SELECTs —
// planned once, with the cached plan revalidated against the schema
// version; re-executions only re-bind the `?` arguments.
//
// # Concurrency
//
// Sessions of one DB are safe for concurrent use. Readers and writers do
// not block each other: a bare SELECT pins an MVCC snapshot and streams
// from it holding no lock at all, so a cursor may stay open indefinitely —
// across concurrent UPDATEs, other transactions, even nested queries
// issued from inside its own Next loop — without stalling any writer or
// being stalled by one. The cursor sees the committed state as of the
// moment the query started (snapshot isolation); rows committed later are
// invisible to it. Still Close the Rows: an open snapshot pins row
// versions that garbage collection cannot reclaim.
//
// Writers take per-table write latches (plus a shared WAL latch that
// serializes transaction frames in the log), granted in FIFO order, so
// writes on disjoint tables only serialize where they genuinely conflict
// and no writer is starved. Two explicit transactions that latch tables
// incrementally can deadlock; the engine detects the cycle and fails the
// statement that would close it with a storage.ErrDeadlock the
// application can retry.
//
// Exec, ExecAll and MustExec remain as compatibility wrappers that drain a
// cursor into a fully materialized Result.
//
// # Transactions
//
// Begin opens an explicit multi-statement transaction; the same protocol is
// available in A-SQL as BEGIN / COMMIT / ROLLBACK [TO SAVEPOINT name] /
// SAVEPOINT name:
//
//	tx, _ := db.Begin(ctx)
//	tx.Exec(`UPDATE Account SET Balance = Balance - 10 WHERE ID = 1`)
//	tx.Exec(`UPDATE Account SET Balance = Balance + 10 WHERE ID = 2`)
//	if err := tx.Commit(); err != nil { ... }
//
// A transaction is atomic over everything a statement touches: heap rows,
// index entries, annotations and annotation tables, dependency outdated
// marks, provenance attachments and agent registrations, approval-log
// entries, and DDL (CREATE/DROP TABLE, CREATE INDEX). Rollback reverts all
// of it from an in-memory undo log of before-images. Savepoints give
// partial rollbacks; a statement that fails mid-transaction is rolled back
// by itself while the transaction survives.
//
// Writer isolation is serializable: a transaction latches every table it
// writes (or reads from inside the transaction) at first touch and holds
// the latches until Commit/Rollback — strict two-phase locking —  so
// conflicting transactions run either entirely before or entirely after
// one another. Snapshot readers never observe a partially committed
// transaction: a transaction's effects become visible atomically, to
// snapshots taken after its commit. The corollary: end transactions
// promptly — latches, unlike snapshots, do queue other writers. Canceling
// the Begin context rolls an abandoned transaction back automatically and
// releases its latches.
//
// Bare statements auto-commit: each runs in an implicit transaction with
// the same machinery, so a multi-row INSERT that fails halfway, a canceled
// context mid-UPDATE, or an annotation command dying between side effects
// rolls back cleanly instead of leaving half-applied state.
//
// # Persistence and durability
//
// A database opened with Options.DataFile is durable. Four files live next
// to each other: the page file itself (heap pages of every table), a
// write-ahead log (DataFile + ".wal"), and a checkpoint pair — a catalog
// snapshot (".catalog") and a recovery manifest (".manifest").
//
// The durability contract is write-ahead logging at transaction
// granularity. Every mutation — CREATE/DROP TABLE, CREATE INDEX,
// INSERT/UPDATE/DELETE, CREATE/DROP ANNOTATION TABLE, ADD/ARCHIVE/RESTORE
// ANNOTATION, provenance attachment and agent registration, and dependency
// outdated-mark transitions — appends a logical WAL record BEFORE its
// in-memory apply, and the records of one transaction (explicit or
// auto-commit) are framed by TxBegin/TxCommit markers. COMMIT promises
// all-or-nothing: once the TxCommit record is in the log the whole
// transaction is recovered after a crash; without it, NOTHING of the
// transaction survives reopening — recovery replays only committed frames,
// rolls back any effect of an uncommitted frame that reached the page file
// early (row records carry before-images for exactly this), and truncates
// the unclosed frame, leaving the log equal to the committed prefix. A
// record torn mid-append by the crash itself is detected by checksum and
// discarded, so recovery always lands on a record boundary.
//
// Checkpoint (called automatically by Close) bounds recovery time: it
// flushes and syncs dirty pages, snapshots the catalog and the
// memory-resident structures (annotation set, dependency bitmaps,
// provenance agents, per-table page lists and RowID counters) atomically,
// and then truncates the WAL. Reopening loads the last checkpoint,
// reattaches every table to its heap pages, rebuilds the row index and
// every secondary B+-tree (and the R-tree behind the annotation store) by
// scanning, and replays the WAL tail through idempotent appliers — safe
// even when buffer evictions flushed pages after the checkpoint.
//
// What survives a crash: every COMMITTED transaction — tables and their
// rows, secondary indexes, annotation tables and annotations (archived
// state included, with their original IDs, authors and timestamps),
// provenance records and the agent registry, and dependency outdated
// marks. What reopening rolls back: the transaction that was open at the
// crash (its WAL frame has no TxCommit), transactions rolled back live
// (their frames end in TxAbort), and the statements a logged savepoint
// rollback or mid-transaction statement failure discarded. What is not
// durable at all: dependency RULES (their procedures are Go function
// values — re-register them after reopen; the marks they produced are
// durable), GRANT/REVOKE state and the content-approval operation log
// (session-scoped; approval records appear in the WAL for audit only), and
// prepared statements. The WAL is written with ordinary unbuffered writes
// and, by default, synced at checkpoints — an OS-level power loss may then
// drop the last few records (whole frames at a time — never half a
// transaction), while an application crash loses nothing committed.
// Options.SyncOnCommit closes that window: every COMMIT waits for the WAL
// to be fsynced through its commit record, and concurrent commits share
// one group-commit fsync so the upgrade costs one disk flush per batch,
// not per transaction.
//
// # When the disk lies
//
// The contract above assumes the disk stores what it was told; this
// section is the contract for when it doesn't. Every page in the data file
// is framed with a 16-byte header carrying a CRC-32C checksum over the
// page ID, format version and payload. Every read re-verifies the frame,
// so a flipped bit (bit rot), a torn page (partially persisted write) or a
// misdirected write (an intact frame landing at the wrong offset) fails
// the read with an error wrapping pager.ErrPageCorrupt that names the file
// and page — it can NEVER be served as ordinary data. Because Open scans
// every live heap page to rebuild indexes, corruption in live data
// surfaces at Open; corruption in unreferenced (orphaned) pages is caught
// by Verify, which scrubs every allocated page plus the logical,
// checkpoint-metadata and annotation layers. The guarantee across all
// storage-fault classes is fail-stop, never silent wrong results.
//
// Write-path faults are contained the same way. A failed page write
// (EIO/ENOSPC) during eviction or flush keeps the page dirty and resident,
// so no update is lost and the operation that needed the eviction reports
// the error. A failed fsync POISONS the pager (and the WAL): after one
// Sync failure every later Sync returns pager.ErrSyncPoisoned, Checkpoint
// refuses to truncate the WAL, and Close surfaces the error — the
// database never claims durability it cannot prove, because a failed
// fsync leaves the kernel's dirty pages in an unknowable state (fsyncgate).
// Recovery from a poisoned database is reopening it: the WAL tail is still
// intact and replays onto the last good checkpoint. A temp-file spill
// hitting ENOSPC mid-query fails that query with exec.ErrSpill wrapping
// the cause, removes the temp file, and leaves the session usable.
//
// DB.Verify and DB.Backup operationalize the contract: run Verify to
// prove a database clean (or enumerate exactly what is broken and where),
// and Backup to take a consistent online snapshot that itself opens and
// verifies. Both are also available as `bdbms-cli verify` and
// `bdbms-cli backup`.
//
// # Network
//
// The engine also runs client/server: cmd/bdbms-server puts a DB behind
// TCP, speaking a length-prefixed binary protocol (docs/PROTOCOL.md) with
// named prepared statements, cursor paging and transaction control, and
// internal/server/client is the Go client mirroring this package's shape
// (Query returning a streaming Rows, Prepare, Begin/Commit/Rollback).
// Statements received over the wire run through the same sessions as
// embedded callers, so SQL semantics, annotation propagation and the
// durability contract above are identical either way.
//
// Network connections authenticate with per-user secrets, registered via
// SetCredential (session-scoped, like GRANT/REVOKE state — the server
// installs them at startup from its -users flag) and checked in constant
// time by Authenticate. The authenticated user is subject to the same
// GRANT/REVOKE and approval checks as an embedded session. bdbms-cli
// -connect runs the interactive shell remotely with byte-identical script
// output, and bdbms-bench -net generates concurrent load, reporting
// throughput and latency percentiles.
package bdbms

import (
	"context"
	"fmt"
	"strings"
	"unicode/utf8"

	"bdbms/internal/annotation"
	"bdbms/internal/authz"
	"bdbms/internal/core"
	"bdbms/internal/dependency"
	"bdbms/internal/exec"
	"bdbms/internal/pager"
	"bdbms/internal/provenance"
	"bdbms/internal/storage"
	"bdbms/internal/wal"
)

// Re-exported result types: queries return Rows cursors (or materialized
// Results) whose cells carry propagated annotations.
type (
	// Result is the materialized outcome of executing one A-SQL statement.
	Result = exec.Result
	// Row is one result row with per-column annotations.
	Row = exec.ARow
	// Rows is a streaming cursor over a query result.
	Rows = exec.Rows
	// Stmt is a prepared statement with `?` placeholders.
	Stmt = exec.Stmt
	// Session executes statements on behalf of a specific user.
	Session = exec.Session
	// Tx is an open multi-statement transaction (see DB.Begin).
	Tx = exec.Tx
	// Annotation is a stored annotation record.
	Annotation = annotation.Annotation
	// Region is a rectangle of annotated cells (columns x rows).
	Region = annotation.Region
)

// Options configures Open.
type Options struct {
	// DataFile, when non-empty, backs the database with a page file on disk
	// instead of memory.
	DataFile string
	// PoolSize is the buffer pool capacity in pages (0 = default).
	PoolSize int
	// CellLevelAnnotations selects the naive per-cell annotation storage
	// scheme instead of the compact rectangle scheme (used for ablations).
	CellLevelAnnotations bool
	// EnforceAuth enables GRANT/REVOKE privilege checks on every statement.
	EnforceAuth bool
	// SpillBudget bounds, in bytes, the resident working set of each
	// blocking query operator — grouped aggregation, DISTINCT, UNION and
	// external sort — before it spills to a temporary file and finishes
	// with a streaming merge. Zero selects the default (8 MiB per
	// operator). Small budgets trade speed for memory; results are
	// identical either way.
	SpillBudget int
	// SyncOnCommit makes every COMMIT (explicit or auto-commit) wait for
	// the WAL to be fsynced through its commit record, upgrading the
	// durability contract from "committed transactions survive an
	// application crash" to "committed transactions survive power loss".
	// Concurrent commits are group-committed: they share one fsync instead
	// of paying one each, so the cost amortizes under load. Off by default
	// (the WAL is then synced at checkpoints); meaningless without a
	// DataFile.
	SyncOnCommit bool
}

// DB is an open bdbms database.
type DB struct {
	inner *core.DB
	pgr   pager.Pager
	wlog  *wal.Log
}

// Open creates an in-memory database with default options.
func Open() *DB {
	db, _ := OpenWith(Options{})
	return db
}

// OpenWith creates a database with the given options. A non-empty DataFile
// makes the database durable: the page file is accompanied by a write-ahead
// log (DataFile + ".wal") and a checkpoint pair (DataFile + ".catalog" and
// ".manifest") living next to it. Opening a DataFile that already holds a
// database recovers it — catalog, rows, secondary indexes, annotations,
// provenance and dependency outdated marks — to the exact committed state of
// the last session, replaying the WAL tail when that session crashed before
// checkpointing.
func OpenWith(opts Options) (*DB, error) {
	coreOpts := core.Options{
		PoolSize:     opts.PoolSize,
		EnforceAuth:  opts.EnforceAuth,
		SpillBudget:  opts.SpillBudget,
		SyncOnCommit: opts.SyncOnCommit,
	}
	var pgr pager.Pager
	var wlog *wal.Log
	if opts.DataFile != "" {
		fp, err := pager.OpenFile(opts.DataFile)
		if err != nil {
			return nil, err
		}
		pgr = fp
		wlog, err = wal.Open(opts.DataFile + ".wal")
		if err != nil {
			fp.Close()
			return nil, err
		}
		coreOpts.Pager = pgr
		coreOpts.WAL = wlog
		coreOpts.CatalogPath = opts.DataFile + ".catalog"
		coreOpts.ManifestPath = opts.DataFile + ".manifest"
		coreOpts.DataPath = opts.DataFile
		coreOpts.WALPath = opts.DataFile + ".wal"
	}
	if opts.CellLevelAnnotations {
		coreOpts.AnnotationStore = annotation.NewCellStore()
	}
	inner, err := core.Open(coreOpts)
	if err != nil {
		if wlog != nil {
			wlog.Close()
		}
		if pgr != nil {
			pgr.Close()
		}
		return nil, err
	}
	return &DB{inner: inner, pgr: pgr, wlog: wlog}, nil
}

// Checkpoint makes the committed state self-contained on disk and truncates
// the write-ahead log: dirty pages are flushed and synced, the catalog and
// the in-memory structures (annotations, outdated bitmaps, provenance
// agents, per-table page lists) are snapshotted atomically. Close checkpoints
// automatically; call Checkpoint directly to bound recovery time of a
// long-lived session. On a memory database it degrades to a buffer flush.
func (db *DB) Checkpoint() error { return db.inner.Checkpoint() }

// Close checkpoints the database and closes the data file and write-ahead
// log when the database is file-backed. The file handles are released even
// when the checkpoint fails; the first error is returned.
func (db *DB) Close() error {
	err := db.inner.Close()
	if db.wlog != nil {
		if cerr := db.wlog.Close(); err == nil {
			err = cerr
		}
	}
	if db.pgr != nil {
		if cerr := db.pgr.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// VerifyReport summarises a Verify scrub: what was covered and every
// problem found. An empty Problems slice means the database is clean.
type VerifyReport = core.VerifyReport

// VerifyProblem is one finding of a Verify scrub.
type VerifyProblem = core.VerifyProblem

// Verify scrubs the whole database and reports every integrity problem it
// can find: it reads back every allocated page through the checksumming
// pager (bit rot, torn frames and misdirected writes fail the read — even
// in orphaned pages no table references), cross-checks each table's heap
// against its row index and secondary B+-trees, validates the checkpoint
// manifest and catalog snapshot against the live engine, and proves every
// annotation is reachable back through the spatial index. Verify quiesces
// all writers for the duration (new writers queue, snapshot readers keep
// streaming), so no statement is observed half-applied. The returned error
// covers operational
// failures only (e.g. the initial flush); integrity findings are in the
// report's Problems.
func (db *DB) Verify() (*VerifyReport, error) { return db.inner.Verify() }

// Backup takes a consistent online snapshot of a durable database into
// destDir (created if missing): the database is checkpointed with all
// writers quiesced and the four files — page file, WAL, catalog and
// manifest — are copied and fsynced. Concurrent writers queue for the
// duration and resume after (snapshot readers are unaffected); no
// statement's effects can be half-captured.
// The copy set is a normal database: restore is
// OpenWith(Options{DataFile: filepath.Join(destDir, filepath.Base(orig))}),
// and the copy passes Verify. Backup fails on a memory database.
func (db *DB) Backup(destDir string) error { return db.inner.Backup(destDir) }

// Query runs one A-SQL statement as the admin user and returns a cursor
// over its result; args bind the statement's `?` placeholders. SELECTs of
// streamable shape are served lazily — close the Rows when done.
func (db *DB) Query(ctx context.Context, sql string, args ...any) (*Rows, error) {
	return db.inner.Query(ctx, sql, args...)
}

// Prepare parses (and for streamable SELECTs, plans) a statement once for
// repeated execution with different `?` arguments, as the admin user.
func (db *DB) Prepare(sql string) (*Stmt, error) { return db.inner.Prepare(sql) }

// Begin opens an explicit multi-statement transaction as the admin user:
// every statement run through the returned Tx is atomic with the others,
// invisible to other sessions until Commit, and fully reverted by Rollback.
// The transaction holds its per-table write latches until it ends, so end
// it promptly; canceling ctx rolls an abandoned transaction back and
// releases the latches. See the package documentation for the transactional
// guarantees.
func (db *DB) Begin(ctx context.Context) (*Tx, error) { return db.inner.Begin(ctx) }

// Exec runs one A-SQL statement as the admin user, materializing the full
// result. It is a compatibility wrapper over Query.
func (db *DB) Exec(sql string) (*Result, error) { return db.inner.Exec(sql) }

// ExecAll runs a semicolon-separated A-SQL script as the admin user.
func (db *DB) ExecAll(sql string) ([]*Result, error) { return db.inner.ExecAll(sql) }

// MustExec runs one statement and panics on error; convenient in examples.
func (db *DB) MustExec(sql string) *Result {
	res, err := db.Exec(sql)
	if err != nil {
		panic(fmt.Sprintf("bdbms: %v (statement: %s)", err, sql))
	}
	return res
}

// Session returns an execution session for the given user, subject to
// GRANT/REVOKE checks when the database was opened with EnforceAuth.
func (db *DB) Session(user string) *Session { return db.inner.Session(user) }

// Storage exposes the underlying storage engine (tables, indexes, I/O stats).
func (db *DB) Storage() *storage.Engine { return db.inner.Storage() }

// Annotations exposes the annotation manager.
func (db *DB) Annotations() *annotation.Manager { return db.inner.Annotations() }

// Provenance exposes the provenance manager.
func (db *DB) Provenance() *provenance.Manager { return db.inner.Provenance() }

// Dependencies exposes the dependency manager.
func (db *DB) Dependencies() *dependency.Manager { return db.inner.Dependencies() }

// Authorization exposes the authorization manager.
func (db *DB) Authorization() *authz.Manager { return db.inner.Authorization() }

// SetCredential installs (or, with secret "", removes) a user's network
// login secret. Credentials gate only the network server's Hello handshake
// (internal/server); the embedded API trusts its caller. Like GRANT state,
// credentials are session-scoped and not persisted.
func (db *DB) SetCredential(user, secret string) { db.inner.Authorization().SetSecret(user, secret) }

// Authenticate checks a user/secret pair against the credentials installed
// by SetCredential, in constant time. It is the default auth hook of the
// network server.
func (db *DB) Authenticate(user, secret string) error {
	return db.inner.Authorization().Authenticate(user, secret)
}

// Render formats a query result as a textual grid, listing each row's
// propagated annotations beneath it — the CLI's (and the examples')
// stand-in for the visualization tool discussed in Section 3.2.
func Render(res *Result) string {
	var b strings.Builder
	if res == nil {
		return ""
	}
	if res.Message != "" {
		b.WriteString(res.Message)
		b.WriteString("\n")
	}
	if len(res.Columns) == 0 {
		return b.String()
	}
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	cells := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		cells[r] = make([]string, len(row.Values))
		for c, v := range row.Values {
			s := TruncateCell(v.String(), 40)
			cells[r][c] = s
			if w := utf8.RuneCountInString(s); c < len(widths) && w > widths[c] {
				widths[c] = w
			}
		}
	}
	writeRow := func(parts []string) {
		for i, p := range parts {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(p)
			for pad := utf8.RuneCountInString(p); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(res.Columns)
	sep := make([]string, len(res.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for r, row := range res.Rows {
		writeRow(cells[r])
		for _, ann := range row.AnnotationsFlat() {
			fmt.Fprintf(&b, "    [%s by %s] %s\n", ann.AnnTable, ann.Author, ann.PlainBody())
		}
	}
	fmt.Fprintf(&b, "(%d row(s))\n", len(res.Rows))
	return b.String()
}

// TruncateCell shortens s to at most max display runes, appending "..." when
// it cuts. Truncation happens on rune boundaries so multi-byte UTF-8
// sequences are never split mid-rune. Render and the CLI use it for grid
// cells. A max below 4 leaves no room for content plus the ellipsis and is
// raised to 4.
func TruncateCell(s string, max int) string {
	if max < 4 {
		max = 4
	}
	// Walk rune boundaries instead of materializing a []rune, so truncating
	// a multi-megabyte sequence cell costs O(max), not O(len(s)).
	n := 0
	cut := -1
	for i := range s {
		if n == max-3 {
			cut = i
		}
		n++
		if n > max {
			return s[:cut] + "..."
		}
	}
	return s
}
