package bdbms_test

// The concurrent isolation harness of the transactions issue: N writer
// goroutines run transfer-style read-modify-write transactions against a
// fixed-total invariant while reader goroutines continuously sum the table.
// If a reader ever observes a partially committed (or partially rolled
// back) transaction, the sum moves and the harness fails. Run under -race
// by CI, the harness also proves the locking protocol itself is data-race
// free.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"bdbms"
	"bdbms/internal/exec"
)

const (
	txAccounts  = 8
	txSeedMoney = 100
	txTotal     = txAccounts * txSeedMoney
)

func setupBank(t *testing.T) *bdbms.DB {
	t.Helper()
	db := bdbms.Open()
	db.MustExec(`CREATE TABLE Account (ID INT NOT NULL PRIMARY KEY, Balance INT)`)
	for i := 1; i <= txAccounts; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO Account VALUES (%d, %d)`, i, txSeedMoney))
	}
	return db
}

// sumBalances streams the whole table through a cursor — deliberately the
// same read path a concurrent reporting query would use.
func sumBalances(db *bdbms.DB, user string) (int64, error) {
	rows, err := db.Session(user).Query(context.Background(), `SELECT Balance FROM Account`)
	if err != nil {
		return 0, err
	}
	defer rows.Close()
	var sum, bal int64
	for rows.Next() {
		if err := rows.Scan(&bal); err != nil {
			return 0, err
		}
		sum += bal
	}
	return sum, rows.Err()
}

// transfer moves amount between two accounts in one transaction, reading
// both balances first (the classic read-modify-write shape). When commit is
// false the transaction is rolled back instead — either way the invariant
// must hold.
func transfer(db *bdbms.DB, user string, from, to int, amount int64, commit bool) error {
	tx, err := db.Session(user).Begin(context.Background())
	if err != nil {
		return err
	}
	read := func(id int) (int64, error) {
		res, err := tx.Exec(`SELECT Balance FROM Account WHERE ID = ?`, id)
		if err != nil {
			return 0, err
		}
		if len(res.Rows) != 1 {
			return 0, fmt.Errorf("account %d: %d rows", id, len(res.Rows))
		}
		return res.Rows[0].Values[0].Int(), nil
	}
	fail := func(err error) error {
		_ = tx.Rollback()
		return err
	}
	fromBal, err := read(from)
	if err != nil {
		return fail(err)
	}
	if fromBal < amount {
		amount = fromBal // never overdraw: balances stay non-negative
	}
	toBal, err := read(to)
	if err != nil {
		return fail(err)
	}
	if _, err := tx.Exec(`UPDATE Account SET Balance = ? WHERE ID = ?`, fromBal-amount, from); err != nil {
		return fail(err)
	}
	if _, err := tx.Exec(`UPDATE Account SET Balance = ? WHERE ID = ?`, toBal+amount, to); err != nil {
		return fail(err)
	}
	if commit {
		return tx.Commit()
	}
	if err := tx.Rollback(); err != nil && !errors.Is(err, exec.ErrTxDone) {
		return err
	}
	return nil
}

// TestConcurrentTransferInvariant is the acceptance harness: 32 writers x 20
// transfers (a quarter rolled back) race 32 readers — 64 goroutines total
// hammering the MVCC/latch protocol under -race; every observed sum must
// equal the fixed total — a reader seeing a partially committed transfer
// would see money created or destroyed — and the final balances must be
// non-negative (serialized read-modify-write transactions cannot
// double-spend).
func TestConcurrentTransferInvariant(t *testing.T) {
	db := setupBank(t)
	const writers, readers, transfers = 32, 32, 20

	stop := make(chan struct{})
	var readersWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		r := r
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			user := fmt.Sprintf("reader%d", r)
			for reads := 0; ; reads++ {
				select {
				case <-stop:
					return
				default:
				}
				sum, err := sumBalances(db, user)
				if err != nil {
					t.Errorf("%s read %d: %v", user, reads, err)
					return
				}
				if sum != txTotal {
					t.Errorf("%s observed torn sum %d, want %d: a partially committed transaction leaked", user, sum, txTotal)
					return
				}
			}
		}()
	}

	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			rng := rand.New(rand.NewSource(int64(w+1) * 7919))
			user := fmt.Sprintf("writer%d", w)
			for i := 0; i < transfers; i++ {
				from := 1 + rng.Intn(txAccounts)
				to := 1 + rng.Intn(txAccounts)
				if to == from {
					to = 1 + to%txAccounts
				}
				commit := rng.Intn(4) != 0 // a quarter of the transactions roll back
				if err := transfer(db, user, from, to, int64(1+rng.Intn(40)), commit); err != nil {
					t.Errorf("%s transfer %d: %v", user, i, err)
					return
				}
			}
		}()
	}

	writersWG.Wait()
	close(stop)
	readersWG.Wait()

	sum, err := sumBalances(db, "final")
	if err != nil {
		t.Fatal(err)
	}
	if sum != txTotal {
		t.Fatalf("final sum %d, want %d", sum, txTotal)
	}
	rows, err := db.Query(context.Background(), `SELECT ID, Balance FROM Account`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
		var id, bal int64
		if err := rows.Scan(&id, &bal); err != nil {
			t.Fatal(err)
		}
		if bal < 0 {
			t.Errorf("account %d overdrawn to %d: a lost update slipped through", id, bal)
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseRollsBackLeakedTransaction: a transaction leaked without
// Commit/Rollback still holds its per-table write latches; Close must roll
// it back and proceed instead of deadlocking in the shutdown checkpoint
// (which quiesces the lock manager) — guarded by a timeout.
func TestCloseRollsBackLeakedTransaction(t *testing.T) {
	db := setupBank(t)
	tx, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE Account SET Balance = 0 WHERE ID = 1`); err != nil {
		t.Fatal(err)
	}
	// Leak tx: no Commit, no Rollback, background context (no watcher out).
	done := make(chan error, 1)
	go func() { done <- db.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked on the leaked transaction's lock")
	}
	if err := tx.Commit(); !errors.Is(err, exec.ErrTxDone) {
		t.Fatalf("Commit after Close = %v, want ErrTxDone", err)
	}
	// The leaked write was rolled back, not committed by Close.
	sum, err := sumBalances(db, "post-close")
	if err != nil {
		t.Fatal(err)
	}
	if sum != txTotal {
		t.Fatalf("sum after Close = %d, want %d (leaked tx rolled back)", sum, txTotal)
	}
}

// TestTxDurableAcrossReopen proves COMMIT's durability promise end to end
// through the public API: committed transactions survive a crash (no
// checkpoint), the uncommitted one is rolled back on reopen.
func TestTxDurableAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	dataFile := dir + "/bank.db"

	db, err := bdbms.OpenWith(bdbms.Options{DataFile: dataFile})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE Account (ID INT NOT NULL PRIMARY KEY, Balance INT)`)
	db.MustExec(`INSERT INTO Account VALUES (1, 100), (2, 100)`)

	tx, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE Account SET Balance = 70 WHERE ID = 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE Account SET Balance = 130 WHERE ID = 2`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// A second transaction is left open at the "crash".
	open, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := open.Exec(`UPDATE Account SET Balance = 0 WHERE ID = 1`); err != nil {
		t.Fatal(err)
	}
	// Crash: no Commit, no Rollback, no Close — reopen from the files alone,
	// exactly as recovery after a real crash would.
	re, err := bdbms.OpenWith(bdbms.Options{DataFile: dataFile})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rows, err := re.Query(context.Background(), `SELECT ID, Balance FROM Account`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	got := map[int64]int64{}
	for rows.Next() {
		var id, bal int64
		if err := rows.Scan(&id, &bal); err != nil {
			t.Fatal(err)
		}
		got[id] = bal
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if got[1] != 70 || got[2] != 130 {
		t.Fatalf("reopened balances %v, want map[1:70 2:130] (committed tx durable, open tx rolled back)", got)
	}
}
