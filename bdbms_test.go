package bdbms

import (
	"path/filepath"
	"strings"
	"testing"

	"bdbms/internal/dependency"
	"bdbms/internal/provenance"
	"bdbms/internal/value"
)

func TestOpenExecQueryRender(t *testing.T) {
	db := Open()
	defer db.Close()
	db.MustExec("CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, GSequence SEQUENCE)")
	db.MustExec("CREATE ANNOTATION TABLE GAnnotation ON Gene")
	db.MustExec("INSERT INTO Gene VALUES ('JW0080', 'mraW', 'ATGATGG'), ('JW0055', 'yabP', 'ATGAAAG')")
	db.MustExec(`ADD ANNOTATION TO Gene.GAnnotation
		VALUE '<Annotation>obtained from RegulonDB</Annotation>'
		ON (SELECT * FROM Gene WHERE GID = 'JW0080')`)

	res, err := db.Exec("SELECT GID, GName FROM Gene ANNOTATION(GAnnotation) ORDER BY GID")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	rendered := Render(res)
	if !strings.Contains(rendered, "JW0080") || !strings.Contains(rendered, "RegulonDB") {
		t.Errorf("render = %s", rendered)
	}
	if !strings.Contains(rendered, "(2 row(s))") {
		t.Errorf("render footer missing: %s", rendered)
	}
	if Render(nil) != "" {
		t.Error("nil render should be empty")
	}
	ddl := db.MustExec("CREATE TABLE T2 (x INT)")
	if !strings.Contains(Render(ddl), "created") {
		t.Error("DDL render missing message")
	}
}

func TestMustExecPanics(t *testing.T) {
	db := Open()
	defer db.Close()
	defer func() {
		if recover() == nil {
			t.Error("MustExec should panic on bad SQL")
		}
	}()
	db.MustExec("THIS IS NOT SQL")
}

func TestExecAllAndManagers(t *testing.T) {
	db := Open()
	defer db.Close()
	results, err := db.ExecAll(`
		CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE);
		CREATE TABLE Protein (PName TEXT, GID TEXT, PSequence SEQUENCE, PFunction TEXT);
		INSERT INTO Gene VALUES ('JW0080', 'ATGATG');
		INSERT INTO Protein VALUES ('pmraW', 'JW0080', 'MKV', 'Cell wall formation');
	`)
	if err != nil || len(results) != 4 {
		t.Fatalf("ExecAll: %v (%d results)", err, len(results))
	}

	// Direct manager access: dependency rule + cascade.
	dep := db.Dependencies()
	if _, err := dep.AddRule(dependency.Rule{
		Sources: []dependency.ColumnRef{{Table: "Protein", Column: "PSequence"}},
		Targets: []dependency.ColumnRef{{Table: "Protein", Column: "PFunction"}},
		Proc:    dependency.Procedure{Name: "Lab experiment"},
	}); err != nil {
		t.Fatal(err)
	}
	db.MustExec("UPDATE Protein SET PSequence = 'MKVNEW' WHERE GID = 'JW0080'")
	if !dep.IsOutdated("Protein", 1, "PFunction") {
		t.Error("dependency cascade not wired through the facade")
	}

	// Provenance through the facade.
	prov := db.Provenance()
	prov.RegisterAgent("loader")
	if _, err := prov.Attach("loader", "Gene",
		provenance.Record{Source: "RegulonDB", Action: provenance.ActionCopy},
		[]Region{{Table: "Gene", ColStart: 0, ColEnd: 1, RowStart: 1, RowEnd: 1}}); err != nil {
		t.Fatal(err)
	}
	if got := prov.Sources("Gene", 1, 0); len(got) != 1 || got[0] != "RegulonDB" {
		t.Errorf("sources = %v", got)
	}

	// Authorization and storage access.
	db.Authorization().Grant("bob", "Gene", "SELECT")
	if !db.Authorization().Check("bob", "Gene", "SELECT") {
		t.Error("authorization manager not wired")
	}
	if db.Storage().PagerStats().Allocs == 0 {
		t.Error("storage stats not reachable")
	}
	if db.Annotations().Count("Gene") != 1 {
		t.Error("annotation manager not wired")
	}
}

func TestSessionsAndEnforcement(t *testing.T) {
	db, err := OpenWith(Options{EnforceAuth: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Authorization().MakeAdmin("admin")
	db.MustExec("CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY)")
	db.MustExec("INSERT INTO Gene VALUES ('JW0080')")

	bob := db.Session("bob")
	if _, err := bob.Exec("SELECT * FROM Gene"); err == nil {
		t.Error("bob should be denied before GRANT")
	}
	db.MustExec("GRANT SELECT ON Gene TO bob")
	if _, err := bob.Exec("SELECT * FROM Gene"); err != nil {
		t.Errorf("bob denied after GRANT: %v", err)
	}
}

func TestFileBackedDatabase(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bdbms.data")
	db, err := OpenWith(Options{DataFile: path, PoolSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)")
	for i := 0; i < 200; i++ {
		db.MustExec("INSERT INTO Gene VALUES ('JW" + value.NewInt(int64(i)).String() + "', 'ATGATGATG')")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The page file exists and is non-trivial.
	if db.Storage().PagerStats().Writes == 0 {
		t.Error("no pages written to the data file")
	}
	if _, err := OpenWith(Options{DataFile: filepath.Join(t.TempDir(), "missing-dir", "x.db")}); err == nil {
		t.Error("opening a data file in a missing directory should fail")
	}
}

func TestCellLevelAnnotationOption(t *testing.T) {
	db, err := OpenWith(Options{CellLevelAnnotations: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Annotations().StoreName() != "cell" {
		t.Errorf("store = %s", db.Annotations().StoreName())
	}
	db.MustExec("CREATE TABLE G (a TEXT, b TEXT)")
	db.MustExec("CREATE ANNOTATION TABLE Ann ON G")
	db.MustExec("INSERT INTO G VALUES ('x', 'y'), ('z', 'w')")
	db.MustExec(`ADD ANNOTATION TO G.Ann VALUE '<Annotation>note</Annotation>' ON (SELECT * FROM G)`)
	// 2 rows x 2 columns = 4 cell records under the naive scheme.
	if got := db.Annotations().StorageRecords(); got != 4 {
		t.Errorf("cell records = %d", got)
	}
}
