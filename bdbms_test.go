package bdbms

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"unicode/utf8"

	"bdbms/internal/dependency"
	"bdbms/internal/provenance"
	"bdbms/internal/value"
)

func TestOpenExecQueryRender(t *testing.T) {
	db := Open()
	defer db.Close()
	db.MustExec("CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, GSequence SEQUENCE)")
	db.MustExec("CREATE ANNOTATION TABLE GAnnotation ON Gene")
	db.MustExec("INSERT INTO Gene VALUES ('JW0080', 'mraW', 'ATGATGG'), ('JW0055', 'yabP', 'ATGAAAG')")
	db.MustExec(`ADD ANNOTATION TO Gene.GAnnotation
		VALUE '<Annotation>obtained from RegulonDB</Annotation>'
		ON (SELECT * FROM Gene WHERE GID = 'JW0080')`)

	res, err := db.Exec("SELECT GID, GName FROM Gene ANNOTATION(GAnnotation) ORDER BY GID")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	rendered := Render(res)
	if !strings.Contains(rendered, "JW0080") || !strings.Contains(rendered, "RegulonDB") {
		t.Errorf("render = %s", rendered)
	}
	if !strings.Contains(rendered, "(2 row(s))") {
		t.Errorf("render footer missing: %s", rendered)
	}
	if Render(nil) != "" {
		t.Error("nil render should be empty")
	}
	ddl := db.MustExec("CREATE TABLE T2 (x INT)")
	if !strings.Contains(Render(ddl), "created") {
		t.Error("DDL render missing message")
	}
}

func TestMustExecPanics(t *testing.T) {
	db := Open()
	defer db.Close()
	defer func() {
		if recover() == nil {
			t.Error("MustExec should panic on bad SQL")
		}
	}()
	db.MustExec("THIS IS NOT SQL")
}

func TestExecAllAndManagers(t *testing.T) {
	db := Open()
	defer db.Close()
	results, err := db.ExecAll(`
		CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE);
		CREATE TABLE Protein (PName TEXT, GID TEXT, PSequence SEQUENCE, PFunction TEXT);
		INSERT INTO Gene VALUES ('JW0080', 'ATGATG');
		INSERT INTO Protein VALUES ('pmraW', 'JW0080', 'MKV', 'Cell wall formation');
	`)
	if err != nil || len(results) != 4 {
		t.Fatalf("ExecAll: %v (%d results)", err, len(results))
	}

	// Direct manager access: dependency rule + cascade.
	dep := db.Dependencies()
	if _, err := dep.AddRule(dependency.Rule{
		Sources: []dependency.ColumnRef{{Table: "Protein", Column: "PSequence"}},
		Targets: []dependency.ColumnRef{{Table: "Protein", Column: "PFunction"}},
		Proc:    dependency.Procedure{Name: "Lab experiment"},
	}); err != nil {
		t.Fatal(err)
	}
	db.MustExec("UPDATE Protein SET PSequence = 'MKVNEW' WHERE GID = 'JW0080'")
	if !dep.IsOutdated("Protein", 1, "PFunction") {
		t.Error("dependency cascade not wired through the facade")
	}

	// Provenance through the facade.
	prov := db.Provenance()
	prov.RegisterAgent("loader")
	if _, err := prov.Attach("loader", "Gene",
		provenance.Record{Source: "RegulonDB", Action: provenance.ActionCopy},
		[]Region{{Table: "Gene", ColStart: 0, ColEnd: 1, RowStart: 1, RowEnd: 1}}); err != nil {
		t.Fatal(err)
	}
	if got := prov.Sources("Gene", 1, 0); len(got) != 1 || got[0] != "RegulonDB" {
		t.Errorf("sources = %v", got)
	}

	// Authorization and storage access.
	db.Authorization().Grant("bob", "Gene", "SELECT")
	if !db.Authorization().Check("bob", "Gene", "SELECT") {
		t.Error("authorization manager not wired")
	}
	if db.Storage().PagerStats().Allocs == 0 {
		t.Error("storage stats not reachable")
	}
	if db.Annotations().Count("Gene") != 1 {
		t.Error("annotation manager not wired")
	}
}

func TestSessionsAndEnforcement(t *testing.T) {
	db, err := OpenWith(Options{EnforceAuth: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Authorization().MakeAdmin("admin")
	db.MustExec("CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY)")
	db.MustExec("INSERT INTO Gene VALUES ('JW0080')")

	bob := db.Session("bob")
	if _, err := bob.Exec("SELECT * FROM Gene"); err == nil {
		t.Error("bob should be denied before GRANT")
	}
	db.MustExec("GRANT SELECT ON Gene TO bob")
	if _, err := bob.Exec("SELECT * FROM Gene"); err != nil {
		t.Errorf("bob denied after GRANT: %v", err)
	}
}

func TestFileBackedDatabase(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bdbms.data")
	db, err := OpenWith(Options{DataFile: path, PoolSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)")
	for i := 0; i < 200; i++ {
		db.MustExec("INSERT INTO Gene VALUES ('JW" + value.NewInt(int64(i)).String() + "', 'ATGATGATG')")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The page file exists and is non-trivial.
	if db.Storage().PagerStats().Writes == 0 {
		t.Error("no pages written to the data file")
	}
	if _, err := OpenWith(Options{DataFile: filepath.Join(t.TempDir(), "missing-dir", "x.db")}); err == nil {
		t.Error("opening a data file in a missing directory should fail")
	}
}

func TestCellLevelAnnotationOption(t *testing.T) {
	db, err := OpenWith(Options{CellLevelAnnotations: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Annotations().StoreName() != "cell" {
		t.Errorf("store = %s", db.Annotations().StoreName())
	}
	db.MustExec("CREATE TABLE G (a TEXT, b TEXT)")
	db.MustExec("CREATE ANNOTATION TABLE Ann ON G")
	db.MustExec("INSERT INTO G VALUES ('x', 'y'), ('z', 'w')")
	db.MustExec(`ADD ANNOTATION TO G.Ann VALUE '<Annotation>note</Annotation>' ON (SELECT * FROM G)`)
	// 2 rows x 2 columns = 4 cell records under the naive scheme.
	if got := db.Annotations().StorageRecords(); got != 4 {
		t.Errorf("cell records = %d", got)
	}
}

// --- cursor API -------------------------------------------------------------------------

// TestQueryFirstRowWithoutMaterializing asserts the streaming cursor's core
// promise: fetching the first row of a query over a large table costs a
// small, table-size-independent number of allocations. Materializing would
// allocate several objects per row (5000 rows here).
func TestQueryFirstRowWithoutMaterializing(t *testing.T) {
	db := Open()
	defer db.Close()
	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, Score INT)`)
	ins, err := db.Prepare(`INSERT INTO Gene VALUES (?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 5000
	for i := 0; i < rows; i++ {
		if _, err := ins.Exec(fmt.Sprintf("G%05d", i), "name", i); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		r, err := db.Query(context.Background(), `SELECT GID, GName FROM Gene`)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Next() {
			t.Fatal("no rows")
		}
		r.Close()
	})
	// A materialized result would need >= 3 allocations per row (ARow
	// values, anns, slice growth) — 15000+ here. The streaming path is a
	// few hundred (dominated by parse + the RowID listing).
	if allocs > float64(rows) {
		t.Errorf("first row cost %.0f allocations; cursor appears to materialize", allocs)
	}
	t.Logf("first-row allocations over %d rows: %.0f", rows, allocs)
}

// TestQueryContextCancelFacade is the acceptance check that a canceled
// context aborts a long scan with context.Canceled at the public API.
func TestQueryContextCancelFacade(t *testing.T) {
	db := Open()
	defer db.Close()
	db.MustExec(`CREATE TABLE T (A INT)`)
	for i := 0; i < 500; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO T VALUES (%d)`, i))
	}
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.Query(ctx, `SELECT A FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("first row: %v", rows.Err())
	}
	cancel()
	for rows.Next() {
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", rows.Err())
	}
}

// TestConcurrentSessions is the stress test of the engine-wide session
// lock: parallel streaming readers and one writer run against the same DB.
// It must pass under -race (CI runs the test step with -race).
func TestConcurrentSessions(t *testing.T) {
	db := Open()
	defer db.Close()
	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, Score INT)`)
	db.MustExec(`CREATE ANNOTATION TABLE Ann ON Gene`)
	for i := 0; i < 300; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO Gene VALUES ('G%04d', 'n%d', %d)`, i, i, i%7))
	}
	db.MustExec(`ADD ANNOTATION TO Gene.Ann VALUE '<Annotation>seed</Annotation>' ON (SELECT GName FROM Gene)`)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sess := db.Session(fmt.Sprintf("reader%d", id))
			q, err := sess.Prepare(`SELECT GID, GName FROM Gene ANNOTATION(Ann) WHERE Score = ?`)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rows, err := q.Query(context.Background(), i%7)
				if err != nil {
					t.Error(err)
					return
				}
				for rows.Next() {
					if len(rows.Row().Values) != 2 {
						t.Error("short row")
					}
				}
				rows.Close()
				if rows.Err() != nil {
					t.Error(rows.Err())
					return
				}
			}
		}(g)
	}
	writer := db.Session("writer")
	ins, err := writer.Prepare(`INSERT INTO Gene VALUES (?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	upd, err := writer.Prepare(`UPDATE Gene SET Score = ? WHERE GID = ?`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		if _, err := ins.Exec(fmt.Sprintf("W%04d", i), "w", i%7); err != nil {
			t.Fatal(err)
		}
		if _, err := upd.Exec((i+1)%7, fmt.Sprintf("W%04d", i)); err != nil {
			t.Fatal(err)
		}
		if i%40 == 0 {
			// Mix in DDL so prepared readers exercise plan invalidation.
			if _, err := writer.Exec(`CREATE INDEX ON Gene (Score)`); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	res := db.MustExec(`SELECT COUNT(*) FROM Gene`)
	if res.Rows[0].Values[0].Int() != 420 {
		t.Errorf("row count = %v", res.Rows[0].Values[0])
	}
}

// TestRenderRuneTruncation verifies cells are truncated on rune boundaries:
// multi-byte UTF-8 content must never be split mid-sequence.
func TestRenderRuneTruncation(t *testing.T) {
	db := Open()
	defer db.Close()
	db.MustExec(`CREATE TABLE Note (ID INT NOT NULL PRIMARY KEY, Body TEXT)`)
	long := strings.Repeat("génèse→", 12) // multi-byte runes, > 40 runes
	stmt, err := db.Prepare(`INSERT INTO Note VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Exec(1, long); err != nil {
		t.Fatal(err)
	}
	res := db.MustExec(`SELECT ID, Body FROM Note`)
	rendered := Render(res)
	if !utf8.ValidString(rendered) {
		t.Fatalf("Render produced invalid UTF-8: %q", rendered)
	}
	if !strings.Contains(rendered, "...") {
		t.Error("long cell was not truncated")
	}
	if got := TruncateCell(long, 40); utf8.RuneCountInString(got) != 40 || !utf8.ValidString(got) {
		t.Errorf("TruncateCell = %q (%d runes)", got, utf8.RuneCountInString(got))
	}
	if got := TruncateCell("short", 40); got != "short" {
		t.Errorf("TruncateCell(short) = %q", got)
	}
}

// Example is the runnable quickstart from README.md: go test executes it and
// verifies the printed output, so the documented code cannot rot.
func Example() {
	db := Open()
	defer db.Close()

	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, Score INT)`)
	ins, _ := db.Prepare(`INSERT INTO Gene VALUES (?, ?, ?)`)
	ins.Exec("JW0080", "mraW", 72)
	ins.Exec("JW0055", "yabP", 41)
	ins.Exec("JW0082", "ftsI", 90)

	// Stream the two best-scoring genes: ORDER BY + LIMIT runs through a
	// Top-N heap, and Score does not need to be in the SELECT list.
	rows, _ := db.Query(context.Background(), `SELECT GID, GName FROM Gene ORDER BY Score DESC LIMIT 2`)
	defer rows.Close()
	for rows.Next() {
		var gid, name string
		rows.Scan(&gid, &name)
		fmt.Println(gid, name)
	}

	// Transactions are serializable and atomic; ROLLBACK reverts everything.
	tx, _ := db.Begin(context.Background())
	tx.Exec(`UPDATE Gene SET Score = 0 WHERE GID = 'JW0082'`)
	tx.Rollback()
	res := db.MustExec(`SELECT Score FROM Gene WHERE GID = 'JW0082'`)
	fmt.Println("score after rollback:", res.Rows[0].Values[0].String())

	// Output:
	// JW0082 ftsI
	// JW0080 mraW
	// score after rollback: 90
}

// Example_annotationPropagation shows the paper's core feature: annotations
// attach to query-defined regions and propagate through SELECT, grouping and
// set operations to the result cells they cover.
func Example_annotationPropagation() {
	db := Open()
	defer db.Close()

	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)`)
	db.MustExec(`CREATE ANNOTATION TABLE Curation ON Gene`)
	db.MustExec(`INSERT INTO Gene VALUES ('JW0080', 'ATGATGG'), ('JW0055', 'ATGAAAG')`)
	db.MustExec(`ADD ANNOTATION TO Gene.Curation
		VALUE '<Annotation>verified against RegulonDB</Annotation>'
		ON (SELECT GSequence FROM Gene WHERE GID = 'JW0080')`)

	res := db.MustExec(`SELECT GID, GSequence FROM Gene ANNOTATION(Curation) ORDER BY GID DESC`)
	for _, row := range res.Rows {
		fmt.Print(row.Values[0].String())
		for _, ann := range row.AnnotationsFlat() {
			fmt.Print(" <- ", ann.PlainBody())
		}
		fmt.Println()
	}

	// AWHERE keeps only rows with a matching annotation.
	curated := db.MustExec(`SELECT GID FROM Gene ANNOTATION(Curation) AWHERE ANN.VALUE LIKE '%verified%'`)
	fmt.Println("curated rows:", len(curated.Rows))

	// Output:
	// JW0080 <- verified against RegulonDB
	// JW0055
	// curated rows: 1
}
