package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"bdbms"
	"bdbms/internal/server/client"
)

// startDaemon runs the daemon body in-process with the given flags and
// returns the bound address plus a channel with the eventual exit code.
func startDaemon(t *testing.T, args ...string) (string, <-chan int, *bytes.Buffer) {
	t.Helper()
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	var out bytes.Buffer
	go func() { exit <- run(args, &out, &out, ready) }()
	select {
	case addr := <-ready:
		return addr, exit, &out
	case code := <-exit:
		t.Fatalf("daemon exited with %d before binding:\n%s", code, out.String())
		return "", nil, nil
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never became ready:\n%s", out.String())
		return "", nil, nil
	}
}

func TestDaemonServesAndDrainsOnSignal(t *testing.T) {
	dataFile := filepath.Join(t.TempDir(), "daemon.bdbms")
	initFile := filepath.Join(t.TempDir(), "init.sql")
	writeFile(t, initFile, `CREATE TABLE T (ID INT NOT NULL PRIMARY KEY, V TEXT);
INSERT INTO T VALUES (1, 'seed');`)

	addr, exit, out := startDaemon(t,
		"-addr", "127.0.0.1:0",
		"-data", dataFile,
		"-init", initFile,
		"-users", "admin:topsecret,alice:wonder",
		"-drain-timeout", "10s",
	)

	// The custom credentials work; the default does not.
	if _, err := client.Dial(addr, "admin", "admin"); err == nil {
		t.Fatal("default credential accepted despite -users")
	}
	c, err := client.Dial(addr, "alice", "wonder")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, _, err := c.Exec(`INSERT INTO T VALUES (?, ?)`, 2, "net"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	// Leave a transaction open so the drain has something to roll back.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Exec(`INSERT INTO T VALUES (?, ?)`, 99, "doomed"); err != nil {
		t.Fatal(err)
	}

	// SIGTERM to our own process: the daemon's handler drains and exits 0.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d:\n%s", code, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM:\n%s", out.String())
	}
	c.Close()
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Fatalf("missing drain notice in output:\n%s", out.String())
	}

	// The database reopens clean: committed rows present, the open
	// transaction rolled back, Verify happy.
	db, err := bdbms.OpenWith(bdbms.Options{DataFile: dataFile})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db.Close()
	report, err := db.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Problems) != 0 {
		t.Fatalf("Verify problems: %+v", report.Problems)
	}
	res := db.MustExec(`SELECT ID FROM T`)
	var ids []int64
	for _, r := range res.Rows {
		ids = append(ids, r.Values[0].Int())
	}
	if len(ids) != 2 {
		t.Fatalf("reopened rows = %v, want the two committed ids", ids)
	}
	for _, id := range ids {
		if id == 99 {
			t.Fatal("uncommitted transaction survived the drain")
		}
	}
}

func TestInstallUsersValidation(t *testing.T) {
	db := bdbms.Open()
	defer db.Close()
	var warn bytes.Buffer
	if err := installUsers(db, "", &warn); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warn.String(), "WARNING") {
		t.Error("default credential installed without a warning")
	}
	if err := db.Authenticate("admin", "admin"); err != nil {
		t.Errorf("default credential: %v", err)
	}
	if err := installUsers(db, "alice:a,bob:b", &warn); err != nil {
		t.Fatal(err)
	}
	if err := db.Authenticate("bob", "b"); err != nil {
		t.Errorf("bob: %v", err)
	}
	for _, bad := range []string{"alice", "alice:", ":secret", "a:b,,"} {
		if err := installUsers(db, bad, &warn); err == nil {
			t.Errorf("installUsers(%q) accepted", bad)
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
