// Command bdbms-server serves a bdbms database over TCP, speaking the
// length-prefixed binary protocol documented in docs/PROTOCOL.md. Clients
// authenticate with a user/secret pair, get a session subject to the
// database's GRANT/REVOKE checks, and run prepared statements, cursor-paged
// queries and multi-statement transactions — the same A-SQL engine as the
// embedded API, shared by any number of concurrent connections.
//
// With -data the served database is durable; without, it is an empty
// in-memory database (useful for experiments and the bench client).
// Credentials are session-scoped like GRANT state: they are installed at
// startup from -users ("alice:secret,bob:hunter2"). With no -users flag the
// server installs admin:admin and prints a loud warning — never expose that
// to a network you don't own.
//
// SIGINT/SIGTERM shut down gracefully: the listener stops, in-flight
// statements finish and deliver their responses, open transactions are
// rolled back, open cursors closed, and the database checkpointed. A second
// signal — or the -drain-timeout deadline — force-closes the stragglers
// (still rolling back and checkpointing before exit).
//
// Usage:
//
//	bdbms-server [-addr :7070] [-data file.db] [-users alice:s1,bob:s2]
//	             [-max-conns 1024] [-idle-timeout 5m] [-drain-timeout 10s]
//	             [-enforce-auth] [-init script.sql] [-quiet]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bdbms"
	"bdbms/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable daemon body. ready, when non-nil, receives the bound
// listener address once the server accepts connections — tests use it to
// dial without racing startup. The returned int is the process exit code.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("bdbms-server", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7070", "TCP address to listen on (host:port; port 0 picks a free port)")
	dataFile := fs.String("data", "", "serve this durable database file (empty = in-memory)")
	users := fs.String("users", "", "comma-separated user:secret pairs allowed to connect")
	maxConns := fs.Int("max-conns", 1024, "maximum concurrent connections")
	idleTimeout := fs.Duration("idle-timeout", 5*time.Minute, "disconnect sessions idle this long")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "how long graceful shutdown waits before force-closing connections")
	enforce := fs.Bool("enforce-auth", false, "enable GRANT/REVOKE privilege checks on every statement")
	initScript := fs.String("init", "", "execute this A-SQL script (as admin) before serving")
	quiet := fs.Bool("quiet", false, "suppress startup banner and connection logs")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "bdbms-server: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	logf := func(format string, a ...any) {
		if !*quiet {
			fmt.Fprintf(stdout, format+"\n", a...)
		}
	}

	db, err := bdbms.OpenWith(bdbms.Options{DataFile: *dataFile, EnforceAuth: *enforce})
	if err != nil {
		fmt.Fprintf(stderr, "bdbms-server: open: %v\n", err)
		return 1
	}
	closed := false
	defer func() {
		if !closed {
			db.Close()
		}
	}()

	if *initScript != "" {
		script, err := os.ReadFile(*initScript)
		if err != nil {
			fmt.Fprintf(stderr, "bdbms-server: init: %v\n", err)
			return 1
		}
		if _, err := db.ExecAll(string(script)); err != nil {
			fmt.Fprintf(stderr, "bdbms-server: init: %v\n", err)
			return 1
		}
	}

	if err := installUsers(db, *users, stderr); err != nil {
		fmt.Fprintf(stderr, "bdbms-server: %v\n", err)
		return 2
	}

	srv, err := server.New(server.Config{
		DB:          db,
		MaxConns:    *maxConns,
		IdleTimeout: *idleTimeout,
		Logf: func(format string, a ...any) {
			if !*quiet {
				fmt.Fprintf(stderr, "bdbms-server: "+format+"\n", a...)
			}
		},
	})
	if err != nil {
		fmt.Fprintf(stderr, "bdbms-server: %v\n", err)
		return 1
	}
	if err := srv.Listen(*addr); err != nil {
		fmt.Fprintf(stderr, "bdbms-server: listen: %v\n", err)
		return 1
	}
	bound := srv.Addr().String()
	logf("bdbms-server listening on %s (data=%s)", bound, orMemory(*dataFile))
	if ready != nil {
		ready <- bound
	}

	// Graceful shutdown on SIGINT/SIGTERM; a second signal force-closes.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	shutdownDone := make(chan error, 1)
	go func() {
		sig := <-sigCh
		logf("bdbms-server: %v received, draining (%v limit; signal again to force)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		go func() {
			<-sigCh
			cancel()
		}()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	if err := srv.Serve(); err != nil {
		fmt.Fprintf(stderr, "bdbms-server: %v\n", err)
		return 1
	}
	if err := <-shutdownDone; err != nil {
		logf("bdbms-server: drain deadline hit, connections force-closed")
	} else {
		logf("bdbms-server: drained cleanly")
	}
	// Close checkpoints; run it explicitly so its error reaches the exit
	// code (the deferred close is skipped).
	closed = true
	if err := db.Close(); err != nil {
		fmt.Fprintf(stderr, "bdbms-server: close: %v\n", err)
		return 1
	}
	logf("bdbms-server: database checkpointed, bye")
	return 0
}

// installUsers parses "user:secret,user:secret" and installs each
// credential. An empty spec installs admin:admin with a warning.
func installUsers(db *bdbms.DB, spec string, stderr io.Writer) error {
	if spec == "" {
		db.SetCredential("admin", "admin")
		fmt.Fprintln(stderr, "bdbms-server: WARNING: no -users given; installed default credential admin:admin — do not expose this server")
		return nil
	}
	for _, pair := range strings.Split(spec, ",") {
		user, secret, ok := strings.Cut(strings.TrimSpace(pair), ":")
		if !ok || user == "" || secret == "" {
			return fmt.Errorf("bad -users entry %q (want user:secret)", pair)
		}
		db.SetCredential(user, secret)
	}
	return nil
}

func orMemory(dataFile string) string {
	if dataFile == "" {
		return "memory"
	}
	return dataFile
}
