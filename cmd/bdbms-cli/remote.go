package main

// Remote mode: `bdbms-cli -connect host:port -user u -secret s` runs the
// same shell against a bdbms-server instead of an in-process database. The
// statement loop, script handling and output format are shared with local
// mode (streamGrid), so a script produces byte-identical output either way;
// the differences are where they must be — authentication is mandatory,
// \tables needs catalog access the wire protocol does not expose, and an
// open transaction is rolled back by the server when the connection drops.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"bdbms"
	"bdbms/internal/server/client"
	"bdbms/internal/server/wire"
	"bdbms/internal/sqlparse"
)

func runRemote(addr, user, secret, script string, quiet bool, stdin io.Reader, stdout, stderr io.Writer) int {
	c, err := client.Dial(addr, user, secret)
	if err != nil {
		fmt.Fprintln(stderr, "bdbms-cli: connect:", err)
		return 1
	}
	defer c.Close()

	if !quiet {
		fmt.Fprintf(stdout, "bdbms — connected to %s as %s (%s)\n", addr, user, c.ServerVersion())
		fmt.Fprintln(stdout, "Enter A-SQL statements terminated by ';'.  \\q quits.")
	}

	runStmt := func(sql string) bool {
		rows, err := c.Query(sql)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return false
		}
		streamRemoteResult(stdout, rows)
		if err := rows.Close(); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return false
		}
		return true
	}

	if script != "" {
		content, err := os.ReadFile(script)
		if err != nil {
			fmt.Fprintln(stderr, "bdbms-cli:", err)
			return 1
		}
		// Same pre-validation as local mode: a syntax error anywhere in the
		// script executes nothing.
		if _, err := sqlparse.ParseAll(string(content)); err != nil {
			fmt.Fprintln(stderr, "bdbms-cli:", err)
			return 1
		}
		for _, stmt := range sqlparse.SplitStatements(string(content)) {
			if !runStmt(stmt) {
				return 1
			}
		}
	}

	scanner := bufio.NewScanner(stdin)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	var buf strings.Builder
	if !quiet {
		fmt.Fprint(stdout, "bdbms> ")
	}
	for scanner.Scan() {
		line := scanner.Text()
		switch strings.TrimSpace(line) {
		case "\\q", "\\quit", "exit", "quit":
			return 0
		case "\\tables":
			fmt.Fprintln(stdout, "\\tables is unavailable in remote mode")
			if !quiet {
				fmt.Fprint(stdout, "bdbms> ")
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			runStmt(buf.String())
			buf.Reset()
			if !quiet {
				fmt.Fprint(stdout, "bdbms> ")
			}
		}
	}
	if buf.Len() > 0 && strings.TrimSpace(buf.String()) != "" {
		runStmt(buf.String())
	}
	return 0
}

// streamRemoteResult prints a network cursor through the shared grid code.
// One format difference is forced by the protocol: a DML status message
// arrives in the Complete frame at the END of the stream, so the cursor is
// drained before the message prints — local mode knows it upfront.
func streamRemoteResult(w io.Writer, rows *client.Rows) {
	cols := rows.Columns()
	if len(cols) == 0 {
		for rows.Next() {
		}
		if msg := rows.Message(); msg != "" {
			fmt.Fprintln(w, msg)
		}
		return
	}
	streamGrid(w, cols, func() ([]string, []annLine, bool) {
		if !rows.Next() {
			return nil, nil, false
		}
		row := rows.Row()
		cells := make([]string, len(cols))
		for i := range cells {
			if i < len(row) {
				cells[i] = bdbms.TruncateCell(row[i].String(), 40)
			}
		}
		return cells, flatAnnLines(rows.Annotations()), true
	})
}

// flatAnnLines mirrors exec.ARow.AnnotationsFlat across the wire: one line
// per distinct annotation (deduplicated by ID when the same annotation
// covers several cells; synthetic ID-0 annotations are kept individually).
func flatAnnLines(cells [][]wire.Ann) []annLine {
	seen := map[int64]bool{}
	var out []annLine
	for _, cell := range cells {
		for _, a := range cell {
			if a.ID != 0 {
				if seen[a.ID] {
					continue
				}
				seen[a.ID] = true
			}
			out = append(out, annLine{a.AnnTable, a.Author, a.PlainBody()})
		}
	}
	return out
}
