// Command bdbms-cli is an interactive A-SQL shell over a bdbms database.
// Statements are read from standard input (terminated by ';') and results are
// rendered as textual grids with propagated annotations listed under each
// row — the textual stand-in for the spreadsheet visualization tool the paper
// discusses in Section 3.2.
//
// Results stream: the shell pulls rows through the database's cursor API
// (Query) and prints each one as it arrives, so a SELECT over a large table
// starts printing immediately and never buffers the whole grid in memory.
//
// With -data the database is durable: the page file is accompanied by a
// write-ahead log and checkpoint files next to it, every invocation reopens
// the previous state, and exiting checkpoints it — so a script can build a
// database in one invocation and a later invocation can query it.
//
// Statements between BEGIN and COMMIT run as one atomic transaction;
// ROLLBACK (or exiting the shell mid-transaction, or crashing — see
// -crash-exit) reverts all of them. SAVEPOINT / ROLLBACK TO SAVEPOINT give
// partial rollbacks inside a transaction.
//
// Two maintenance subcommands complement the shell. `bdbms-cli verify -data
// file.db` scrubs the whole database — page checksums (bit rot, torn pages,
// misdirected writes, including in pages no live table references), heap ↔
// index agreement, manifest/catalog consistency and annotation reachability
// — and exits non-zero with a line per problem when anything is broken.
// `bdbms-cli backup -data file.db -dest dir/` takes a consistent online
// snapshot: a checkpointed copy of the database files that opens (and
// verifies) as a normal database.
//
// Usage:
//
//	bdbms-cli [-data file.db] [-user name] [-enforce-auth] [-script file.sql] [-crash-exit]
//	bdbms-cli verify -data file.db
//	bdbms-cli backup -data file.db -dest dir
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"unicode/utf8"

	"bdbms"
	"bdbms/internal/sqlparse"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable CLI body; it returns the process exit code and closes
// (checkpoints) the database on every path.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	// Maintenance subcommands dispatch before flag parsing; everything else
	// is the interactive/script shell.
	if len(args) > 0 {
		switch args[0] {
		case "verify":
			return runVerify(args[1:], stdout, stderr)
		case "backup":
			return runBackup(args[1:], stdout, stderr)
		}
	}
	fs := flag.NewFlagSet("bdbms-cli", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dataFile := fs.String("data", "", "back the database with this file (plus .wal/.catalog/.manifest next to it); reopens existing state")
	user := fs.String("user", "admin", "user to run statements as")
	enforce := fs.Bool("enforce-auth", false, "enable GRANT/REVOKE privilege checks")
	script := fs.String("script", "", "execute this A-SQL script file before reading stdin")
	quiet := fs.Bool("quiet", false, "suppress the banner and prompts")
	crashExit := fs.Bool("crash-exit", false, "exit after the script WITHOUT closing the database (crash-recovery testing: open transactions are neither committed nor rolled back in-process)")
	connect := fs.String("connect", "", "connect to a bdbms-server at host:port instead of opening a database in-process")
	secret := fs.String("secret", "", "login secret for -connect (pair with -user)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *connect != "" {
		if *dataFile != "" || *enforce || *crashExit {
			fmt.Fprintln(stderr, "bdbms-cli: -data, -enforce-auth and -crash-exit do not apply with -connect (the server owns the database)")
			return 2
		}
		return runRemote(*connect, *user, *secret, *script, *quiet, stdin, stdout, stderr)
	}

	db, err := bdbms.OpenWith(bdbms.Options{DataFile: *dataFile, EnforceAuth: *enforce})
	if err != nil {
		fmt.Fprintln(stderr, "bdbms-cli:", err)
		return 1
	}
	if *enforce {
		db.Authorization().MakeAdmin("admin")
	}
	session := db.Session(*user)

	closed := false
	closeDB := func() int {
		if closed {
			return 0
		}
		closed = true
		// A transaction left open when the shell exits is rolled back —
		// exactly what a disconnect does in a client/server database. (It
		// also holds the database's exclusive lock, so closing without the
		// rollback would deadlock the checkpoint.)
		if session.InTx() {
			fmt.Fprintln(stderr, "warning: open transaction rolled back")
			if err := session.CloseTx(); err != nil {
				fmt.Fprintln(stderr, "bdbms-cli: rollback:", err)
			}
		}
		if err := db.Close(); err != nil {
			fmt.Fprintln(stderr, "bdbms-cli: close:", err)
			return 1
		}
		return 0
	}
	defer closeDB()

	if !*quiet {
		fmt.Fprintln(stdout, "bdbms — a database management system for biological data")
		fmt.Fprintln(stdout, "Enter A-SQL statements terminated by ';'.  \\q quits, \\tables lists tables.")
	}

	runStmt := func(sql string) bool {
		rows, err := session.Query(context.Background(), sql)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return false
		}
		defer rows.Close()
		streamResult(stdout, rows)
		if err := rows.Err(); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return false
		}
		return true
	}

	if *script != "" {
		content, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(stderr, "bdbms-cli:", err)
			return 1
		}
		// Validate the whole script before executing anything, so a syntax
		// error cannot leave the database half-migrated.
		if _, err := sqlparse.ParseAll(string(content)); err != nil {
			fmt.Fprintln(stderr, "bdbms-cli:", err)
			return 1
		}
		for _, stmt := range sqlparse.SplitStatements(string(content)) {
			if !runStmt(stmt) {
				// Close (checkpoint) so the statements that DID commit
				// survive into the next invocation.
				if rc := closeDB(); rc != 0 {
					return rc
				}
				return 1
			}
		}
		if *crashExit {
			// Simulated crash: skip the rollback and the checkpoint — the
			// next invocation recovers from the WAL alone, and an open
			// transaction's records form an unclosed frame it rolls back.
			closed = true
			return 0
		}
	}

	scanner := bufio.NewScanner(stdin)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	var buf strings.Builder
	if !*quiet {
		fmt.Fprint(stdout, "bdbms> ")
	}
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case "\\q", "\\quit", "exit", "quit":
			return closeDB()
		case "\\tables":
			for _, tbl := range db.Storage().Tables() {
				fmt.Fprintf(stdout, "%s (%d rows)\n", tbl.Name(), tbl.RowCount())
				for _, ann := range db.Storage().Catalog().AnnotationTables(tbl.Name()) {
					fmt.Fprintf(stdout, "  annotation table: %s [%s]\n", ann.Name, ann.Category)
				}
			}
			if !*quiet {
				fmt.Fprint(stdout, "bdbms> ")
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			runStmt(buf.String())
			buf.Reset()
			if !*quiet {
				fmt.Fprint(stdout, "bdbms> ")
			}
		}
	}
	if buf.Len() > 0 && strings.TrimSpace(buf.String()) != "" {
		runStmt(buf.String())
	}
	return closeDB()
}

// runVerify is the `bdbms-cli verify` subcommand: scrub the database named
// by -data and report every problem. Exit 0 = clean, 1 = problems found (or
// the database does not even open), 2 = usage error.
func runVerify(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bdbms-cli verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dataFile := fs.String("data", "", "database file to verify (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dataFile == "" {
		fmt.Fprintln(stderr, "bdbms-cli verify: -data is required")
		return 2
	}
	db, err := bdbms.OpenWith(bdbms.Options{DataFile: *dataFile})
	if err != nil {
		// Corruption in a live heap page surfaces when Open scans the heaps
		// to rebuild indexes — report it as a verification failure, with the
		// open error as the diagnostic, rather than a usage problem.
		fmt.Fprintln(stdout, "FAILED: database does not open:", err)
		return 1
	}
	defer db.Close()
	rep, err := db.Verify()
	if err != nil {
		fmt.Fprintln(stderr, "bdbms-cli verify:", err)
		return 1
	}
	fmt.Fprintln(stdout, rep.String())
	if !rep.Clean() {
		return 1
	}
	return 0
}

// runBackup is the `bdbms-cli backup` subcommand: open the database named
// by -data and snapshot it into -dest. The snapshot is itself a database —
// point -data at the copied file to restore.
func runBackup(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bdbms-cli backup", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dataFile := fs.String("data", "", "database file to back up (required)")
	dest := fs.String("dest", "", "destination directory for the snapshot (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dataFile == "" || *dest == "" {
		fmt.Fprintln(stderr, "bdbms-cli backup: -data and -dest are required")
		return 2
	}
	db, err := bdbms.OpenWith(bdbms.Options{DataFile: *dataFile})
	if err != nil {
		fmt.Fprintln(stderr, "bdbms-cli backup:", err)
		return 1
	}
	defer db.Close()
	if err := db.Backup(*dest); err != nil {
		fmt.Fprintln(stderr, "bdbms-cli backup:", err)
		return 1
	}
	fmt.Fprintf(stdout, "backup complete: %s\n", filepath.Join(*dest, filepath.Base(*dataFile)))
	return 0
}

// annLine is one annotation line below a grid row, already flattened: the
// shared format code below is agnostic to whether the annotation came from
// the embedded cursor or across the wire.
type annLine struct {
	table, author, body string
}

// streamGrid prints a streaming result grid: header, separator, one line
// per row the moment next yields it (annotations listed beneath), and the
// row-count footer. Column widths are fixed from the header (cells are
// truncated to 40 runes), trading the perfectly-fitted grid of bdbms.Render
// for output that streams. Local and remote mode share this function, which
// is what keeps their golden outputs byte-identical.
func streamGrid(w io.Writer, cols []string, next func() ([]string, []annLine, bool)) {
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = utf8.RuneCountInString(c)
		if widths[i] < 8 {
			widths[i] = 8
		}
	}
	writeRow := func(parts []string) {
		for i, p := range parts {
			if i > 0 {
				fmt.Fprint(w, " | ")
			}
			fmt.Fprint(w, p)
			// Pad by rune count, not bytes, so multi-byte cells align.
			for pad := utf8.RuneCountInString(p); pad < widths[i]; pad++ {
				fmt.Fprint(w, " ")
			}
		}
		fmt.Fprintln(w)
	}
	writeRow(cols)
	sep := make([]string, len(cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	n := 0
	for {
		cells, anns, ok := next()
		if !ok {
			break
		}
		writeRow(cells)
		for _, ann := range anns {
			fmt.Fprintf(w, "    [%s by %s] %s\n", ann.table, ann.author, ann.body)
		}
		n++
	}
	fmt.Fprintf(w, "(%d row(s))\n", n)
}

// streamResult prints an embedded cursor's result as it is pulled.
func streamResult(w io.Writer, rows *bdbms.Rows) {
	if msg := rows.Message(); msg != "" {
		fmt.Fprintln(w, msg)
	}
	cols := rows.Columns()
	if len(cols) == 0 {
		return
	}
	streamGrid(w, cols, func() ([]string, []annLine, bool) {
		if !rows.Next() {
			return nil, nil, false
		}
		row := rows.Row()
		cells := make([]string, len(cols))
		for i := range cells {
			if i < len(row.Values) {
				cells[i] = bdbms.TruncateCell(row.Values[i].String(), 40)
			}
		}
		var anns []annLine
		for _, ann := range row.AnnotationsFlat() {
			anns = append(anns, annLine{ann.AnnTable, ann.Author, ann.PlainBody()})
		}
		return cells, anns, true
	})
}
