// Command bdbms-cli is an interactive A-SQL shell over a bdbms database.
// Statements are read from standard input (terminated by ';') and results are
// rendered as textual grids with propagated annotations listed under each
// row — the textual stand-in for the spreadsheet visualization tool the paper
// discusses in Section 3.2.
//
// Usage:
//
//	bdbms-cli [-data file.db] [-user name] [-enforce-auth] [-script file.sql]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"bdbms"
)

func main() {
	dataFile := flag.String("data", "", "back the database with this page file (default: in-memory)")
	user := flag.String("user", "admin", "user to run statements as")
	enforce := flag.Bool("enforce-auth", false, "enable GRANT/REVOKE privilege checks")
	script := flag.String("script", "", "execute this A-SQL script file before reading stdin")
	quiet := flag.Bool("quiet", false, "suppress the banner and prompts")
	flag.Parse()

	db, err := bdbms.OpenWith(bdbms.Options{DataFile: *dataFile, EnforceAuth: *enforce})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bdbms-cli:", err)
		os.Exit(1)
	}
	defer db.Close()
	if *enforce {
		db.Authorization().MakeAdmin("admin")
	}
	session := db.Session(*user)

	if !*quiet {
		fmt.Println("bdbms — a database management system for biological data")
		fmt.Println("Enter A-SQL statements terminated by ';'.  \\q quits, \\tables lists tables.")
	}

	run := func(sql string) {
		res, err := session.Exec(sql)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		fmt.Print(bdbms.Render(res))
	}

	if *script != "" {
		content, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bdbms-cli:", err)
			os.Exit(1)
		}
		results, err := session.ExecAll(string(content))
		for _, res := range results {
			fmt.Print(bdbms.Render(res))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	var buf strings.Builder
	if !*quiet {
		fmt.Print("bdbms> ")
	}
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case "\\q", "\\quit", "exit", "quit":
			return
		case "\\tables":
			for _, tbl := range db.Storage().Tables() {
				fmt.Printf("%s (%d rows)\n", tbl.Name(), tbl.RowCount())
				for _, ann := range db.Storage().Catalog().AnnotationTables(tbl.Name()) {
					fmt.Printf("  annotation table: %s [%s]\n", ann.Name, ann.Category)
				}
			}
			if !*quiet {
				fmt.Print("bdbms> ")
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			run(buf.String())
			buf.Reset()
			if !*quiet {
				fmt.Print("bdbms> ")
			}
		}
	}
	if buf.Len() > 0 && strings.TrimSpace(buf.String()) != "" {
		run(buf.String())
	}
}
