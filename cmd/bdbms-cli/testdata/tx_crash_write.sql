-- First invocation (run with -crash-exit): a committed statement, then a
-- transaction left open when the process "crashes". The second invocation
-- must see the committed row untouched and nothing of the transaction.
CREATE TABLE T (N INT NOT NULL PRIMARY KEY, S TEXT);
INSERT INTO T VALUES (1, 'committed');
BEGIN;
INSERT INTO T VALUES (2, 'uncommitted');
UPDATE T SET S = 'mutated' WHERE N = 1;
SELECT N, S FROM T;
