-- Transactions in script mode: a committed transfer, a rolled-back update
-- (visible inside its transaction, gone after), and a savepoint rollback.
CREATE TABLE Acct (ID INT NOT NULL PRIMARY KEY, Bal INT);
INSERT INTO Acct VALUES (1, 100), (2, 100);

BEGIN;
UPDATE Acct SET Bal = Bal - 25 WHERE ID = 1;
UPDATE Acct SET Bal = Bal + 25 WHERE ID = 2;
COMMIT;

BEGIN;
UPDATE Acct SET Bal = 0 WHERE ID = 1;
SELECT ID, Bal FROM Acct;
ROLLBACK;
SELECT ID, Bal FROM Acct;

BEGIN;
INSERT INTO Acct VALUES (3, 50);
SAVEPOINT sp;
DELETE FROM Acct WHERE ID = 3;
UPDATE Acct SET Bal = 1 WHERE ID = 2;
ROLLBACK TO SAVEPOINT sp;
COMMIT;
SELECT ID, Bal FROM Acct;
