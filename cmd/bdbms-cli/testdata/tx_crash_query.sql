-- Second invocation: recovery must have rolled the open transaction back.
SELECT N, S FROM T;
