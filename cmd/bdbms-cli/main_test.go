package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bdbms/internal/pager"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// runCLI drives the CLI body in-process and captures its streams.
func runCLI(t *testing.T, args []string, stdin string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errBuf)
	return out.String(), errBuf.String(), code
}

func checkGolden(t *testing.T, goldenPath, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if string(want) != got {
		t.Errorf("output differs from %s\n got:\n%s\nwant:\n%s", goldenPath, got, string(want))
	}
}

// TestScriptModeGolden locks the script-mode output format: grids, streamed
// rows, annotation lines and DML summaries.
func TestScriptModeGolden(t *testing.T) {
	stdout, stderr, code := runCLI(t,
		[]string{"-quiet", "-script", "testdata/basic.sql"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if stderr != "" {
		t.Errorf("unexpected stderr: %s", stderr)
	}
	checkGolden(t, filepath.Join("testdata", "basic.golden"), stdout)
}

// TestAnalyticsScriptGolden locks the streamed output of the blocking query
// shapes (GROUP BY + HAVING, DISTINCT, Top-N, set operations) — all served
// by the iterator pipeline — including ORDER BY on a column that is not in
// the SELECT list, which used to be rejected with "ORDER BY supports output
// columns only" and is now supported.
func TestAnalyticsScriptGolden(t *testing.T) {
	stdout, stderr, code := runCLI(t,
		[]string{"-quiet", "-script", "testdata/analytics.sql"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if stderr != "" {
		t.Errorf("unexpected stderr: %s", stderr)
	}
	checkGolden(t, filepath.Join("testdata", "analytics.golden"), stdout)
}

// TestDataFileAcrossInvocations is the two-invocation durability case: the
// first invocation writes a database with -data, the second reopens the file
// and queries (and extends) the recovered state.
func TestDataFileAcrossInvocations(t *testing.T) {
	dataFile := filepath.Join(t.TempDir(), "genes.db")

	stdout, stderr, code := runCLI(t,
		[]string{"-quiet", "-data", dataFile, "-script", "testdata/persist_write.sql"}, "")
	if code != 0 {
		t.Fatalf("write invocation exit %d, stderr: %s", code, stderr)
	}
	checkGolden(t, filepath.Join("testdata", "persist_write.golden"), stdout)

	stdout, stderr, code = runCLI(t,
		[]string{"-quiet", "-data", dataFile, "-script", "testdata/persist_query.sql"}, "")
	if code != 0 {
		t.Fatalf("query invocation exit %d, stderr: %s", code, stderr)
	}
	checkGolden(t, filepath.Join("testdata", "persist_query.golden"), stdout)

	// The INSERT of the second invocation must survive into a third.
	stdout, _, code = runCLI(t, []string{"-quiet", "-data", dataFile}, "SELECT GID FROM Gene;\n\\q\n")
	if code != 0 {
		t.Fatalf("third invocation exit %d", code)
	}
	if !strings.Contains(stdout, "JW0084") || !strings.Contains(stdout, "(4 row(s))") {
		t.Errorf("third invocation misses second invocation's insert:\n%s", stdout)
	}
}

// TestScriptSyntaxErrorExecutesNothing double-checks the parse-before-run
// contract in combination with a data file: a bad script leaves no trace.
func TestScriptSyntaxErrorExecutesNothing(t *testing.T) {
	dir := t.TempDir()
	dataFile := filepath.Join(dir, "x.db")
	bad := filepath.Join(dir, "bad.sql")
	if err := os.WriteFile(bad, []byte("CREATE TABLE T (A INT);\nSELEKT nonsense;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code := runCLI(t, []string{"-quiet", "-data", dataFile, "-script", bad}, "")
	if code == 0 {
		t.Fatal("bad script should exit non-zero")
	}
	if stderr == "" {
		t.Error("bad script should report the parse error")
	}
	stdout, _, code := runCLI(t, []string{"-quiet", "-data", dataFile}, "\\tables\n\\q\n")
	if code != 0 {
		t.Fatalf("inspect invocation exit %d", code)
	}
	if strings.Contains(stdout, "T (") {
		t.Errorf("half-migrated state leaked into the data file:\n%s", stdout)
	}
}

// TestInteractiveStreamsRows sanity-checks the interactive loop against a
// scripted stdin session.
func TestInteractiveStreamsRows(t *testing.T) {
	in := strings.Join([]string{
		"CREATE TABLE G (N INT);",
		"INSERT INTO G VALUES (1), (2), (3);",
		"SELECT N FROM G WHERE N > 1;",
		"\\tables",
		"\\q",
	}, "\n") + "\n"
	stdout, stderr, code := runCLI(t, []string{"-quiet"}, in)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"(2 row(s))", "G (3 rows)"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output misses %q:\n%s", want, stdout)
		}
	}
}

// TestTransactionScriptGolden locks the script-mode output of
// BEGIN/COMMIT/ROLLBACK/SAVEPOINT flows: the rolled-back update is visible
// inside its transaction and gone after, the savepoint rollback keeps the
// transaction's earlier insert.
func TestTransactionScriptGolden(t *testing.T) {
	stdout, stderr, code := runCLI(t,
		[]string{"-quiet", "-script", "testdata/tx.sql"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if stderr != "" {
		t.Errorf("unexpected stderr: %s", stderr)
	}
	checkGolden(t, filepath.Join("testdata", "tx.golden"), stdout)
}

// TestTransactionCrashRecovery is the two-invocation crash case: the first
// invocation commits one row, opens a transaction, mutates through it and
// "crashes" (-crash-exit skips rollback AND checkpoint). The second
// invocation recovers from the WAL alone and must see none of the
// transaction's effects.
func TestTransactionCrashRecovery(t *testing.T) {
	dataFile := filepath.Join(t.TempDir(), "crash.db")

	stdout, stderr, code := runCLI(t,
		[]string{"-quiet", "-data", dataFile, "-crash-exit", "-script", "testdata/tx_crash_write.sql"}, "")
	if code != 0 {
		t.Fatalf("crash invocation exit %d, stderr: %s", code, stderr)
	}
	checkGolden(t, filepath.Join("testdata", "tx_crash_write.golden"), stdout)
	// The transaction's own view shows both rows before the crash...
	if !strings.Contains(stdout, "uncommitted") {
		t.Errorf("transaction's own SELECT misses its write:\n%s", stdout)
	}

	stdout, stderr, code = runCLI(t,
		[]string{"-quiet", "-data", dataFile, "-script", "testdata/tx_crash_query.sql"}, "")
	if code != 0 {
		t.Fatalf("recovery invocation exit %d, stderr: %s", code, stderr)
	}
	// ...but after the crash none of it survived: not the insert, not the
	// update, only the committed row.
	checkGolden(t, filepath.Join("testdata", "tx_crash_query.golden"), stdout)
	if strings.Contains(stdout, "uncommitted") || strings.Contains(stdout, "mutated") {
		t.Errorf("uncommitted transaction leaked across the crash:\n%s", stdout)
	}
	if !strings.Contains(stdout, "committed") {
		t.Errorf("committed row lost across the crash:\n%s", stdout)
	}
}

// TestAbandonedTransactionRolledBackOnExit covers the clean-exit variant: a
// script ends mid-transaction WITHOUT -crash-exit, so the shell rolls the
// transaction back (with a warning) before checkpointing.
func TestAbandonedTransactionRolledBackOnExit(t *testing.T) {
	dataFile := filepath.Join(t.TempDir(), "abandon.db")

	_, stderr, code := runCLI(t,
		[]string{"-quiet", "-data", dataFile, "-script", "testdata/tx_crash_write.sql"}, "")
	if code != 0 {
		t.Fatalf("first invocation exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "open transaction rolled back") {
		t.Errorf("no rollback warning on stderr: %q", stderr)
	}

	stdout, stderr, code := runCLI(t,
		[]string{"-quiet", "-data", dataFile, "-script", "testdata/tx_crash_query.sql"}, "")
	if code != 0 {
		t.Fatalf("second invocation exit %d, stderr: %s", code, stderr)
	}
	if strings.Contains(stdout, "uncommitted") || strings.Contains(stdout, "mutated") {
		t.Errorf("abandoned transaction leaked:\n%s", stdout)
	}
}

// buildVerifyDB runs the verify fixture script against a fresh data file:
// page 0 ends up orphaned (Scratch is dropped), page 1 holds Gene's rows.
func buildVerifyDB(t *testing.T) string {
	t.Helper()
	dataFile := filepath.Join(t.TempDir(), "genes.db")
	_, stderr, code := runCLI(t,
		[]string{"-quiet", "-data", dataFile, "-script", "testdata/verify_build.sql"}, "")
	if code != 0 {
		t.Fatalf("build exit %d, stderr: %s", code, stderr)
	}
	return dataFile
}

// corruptPage flips one payload byte of the given page in place.
func corruptPage(t *testing.T, dataFile string, id int) {
	t.Helper()
	f, err := os.OpenFile(dataFile, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	off := int64(pager.FrameOffset(pager.PageID(id))) + int64(pager.PageHeaderSize) + 37
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyCLIGolden locks the verify subcommand's three outcomes: a clean
// report (exit 0), a FAILED report for damage the database survives opening
// with (exit 1), and the does-not-open diagnostic for damage on a live page
// (exit 1). Temp paths are normalized before golden comparison.
func TestVerifyCLIGolden(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		dataFile := buildVerifyDB(t)
		stdout, stderr, code := runCLI(t, []string{"verify", "-data", dataFile}, "")
		if code != 0 {
			t.Errorf("exit %d, want 0; stderr: %s", code, stderr)
		}
		checkGolden(t, filepath.Join("testdata", "verify_clean.golden"), stdout)
	})
	t.Run("orphan-page-corrupt", func(t *testing.T) {
		dataFile := buildVerifyDB(t)
		corruptPage(t, dataFile, 0)
		stdout, _, code := runCLI(t, []string{"verify", "-data", dataFile}, "")
		if code != 1 {
			t.Errorf("exit %d, want 1", code)
		}
		stdout = strings.ReplaceAll(stdout, dataFile, "<data>")
		// The checksum values depend on the corrupted byte's surroundings;
		// they are deterministic for this fixture, so the golden pins them.
		checkGolden(t, filepath.Join("testdata", "verify_corrupt_page.golden"), stdout)
	})
	t.Run("live-page-corrupt", func(t *testing.T) {
		dataFile := buildVerifyDB(t)
		corruptPage(t, dataFile, 1)
		stdout, _, code := runCLI(t, []string{"verify", "-data", dataFile}, "")
		if code != 1 {
			t.Errorf("exit %d, want 1", code)
		}
		stdout = strings.ReplaceAll(stdout, dataFile, "<data>")
		checkGolden(t, filepath.Join("testdata", "verify_unopenable.golden"), stdout)
	})
	t.Run("missing-data-flag", func(t *testing.T) {
		_, stderr, code := runCLI(t, []string{"verify"}, "")
		if code != 2 {
			t.Errorf("exit %d, want 2", code)
		}
		if !strings.Contains(stderr, "-data") {
			t.Errorf("usage error does not mention -data: %s", stderr)
		}
	})
}

// TestBackupCLIGolden locks the backup subcommand: the snapshot opens,
// verifies clean (same report as the source), and a post-backup write to the
// source does not leak into it.
func TestBackupCLIGolden(t *testing.T) {
	dataFile := buildVerifyDB(t)
	dest := filepath.Join(t.TempDir(), "snap")

	stdout, stderr, code := runCLI(t, []string{"backup", "-data", dataFile, "-dest", dest}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	stdout = strings.ReplaceAll(stdout, dest, "<dest>")
	checkGolden(t, filepath.Join("testdata", "backup.golden"), stdout)

	// Grow the source after the snapshot...
	_, stderr, code = runCLI(t, []string{"-quiet", "-data", dataFile},
		"INSERT INTO Gene VALUES ('JW9999', 'late', 1);\n\\q\n")
	if code != 0 {
		t.Fatalf("post-backup insert exit %d, stderr: %s", code, stderr)
	}

	// ...and the snapshot must still verify with the original counts.
	snapData := filepath.Join(dest, filepath.Base(dataFile))
	stdout, stderr, code = runCLI(t, []string{"verify", "-data", snapData}, "")
	if code != 0 {
		t.Errorf("snapshot verify exit %d, stderr: %s", code, stderr)
	}
	checkGolden(t, filepath.Join("testdata", "verify_clean.golden"), stdout)

	stdout, _, code = runCLI(t, []string{"-quiet", "-data", snapData},
		"SELECT COUNT(*) FROM Gene;\n\\q\n")
	if code != 0 {
		t.Fatalf("snapshot query exit %d", code)
	}
	if !strings.Contains(stdout, "3") || strings.Contains(stdout, "JW9999") {
		t.Errorf("snapshot leaked post-backup state:\n%s", stdout)
	}

	t.Run("missing-flags", func(t *testing.T) {
		_, _, code := runCLI(t, []string{"backup", "-data", dataFile}, "")
		if code != 2 {
			t.Errorf("exit %d, want 2", code)
		}
	})
}
