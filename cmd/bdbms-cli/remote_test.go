package main

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bdbms"
	"bdbms/internal/server"
)

// startTestServer serves an empty in-memory database (credential
// cli:cli-secret for the admin user) on a random port.
func startTestServer(t *testing.T) string {
	t.Helper()
	db := bdbms.Open()
	db.SetCredential("admin", "cli-secret")
	srv, err := server.New(server.Config{DB: db, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-serveDone; err != nil {
			t.Errorf("Serve: %v", err)
		}
		db.Close()
	})
	return srv.Addr().String()
}

// TestRemoteScriptGoldenMirrorsLocal is the remote-mode contract: the SAME
// script checked against the SAME golden file as local-mode
// TestScriptModeGolden. Running it over the wire — parse/bind/execute
// frames, typed value encoding, annotation frames — must be byte-identical
// to running it embedded.
func TestRemoteScriptGoldenMirrorsLocal(t *testing.T) {
	addr := startTestServer(t)
	stdout, stderr, code := runCLI(t, []string{
		"-quiet", "-connect", addr, "-user", "admin", "-secret", "cli-secret",
		"-script", "testdata/basic.sql"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if stderr != "" {
		t.Errorf("unexpected stderr: %s", stderr)
	}
	checkGolden(t, filepath.Join("testdata", "basic.golden"), stdout)
}

func TestRemoteInteractive(t *testing.T) {
	addr := startTestServer(t)
	in := strings.Join([]string{
		"CREATE TABLE G (N INT);",
		"INSERT INTO G VALUES (1), (2), (3);",
		"BEGIN;",
		"INSERT INTO G VALUES (4);",
		"ROLLBACK;",
		"SELECT N FROM G WHERE N > 1;",
		"\\q",
	}, "\n") + "\n"
	stdout, stderr, code := runCLI(t,
		[]string{"-quiet", "-connect", addr, "-user", "admin", "-secret", "cli-secret"}, in)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"table G created", "3 row(s) inserted", "(2 row(s))"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output misses %q:\n%s\nstderr:%s", want, stdout, stderr)
		}
	}
	if strings.Contains(stdout, "(3 row(s))") {
		t.Errorf("rolled-back row visible:\n%s", stdout)
	}
}

func TestRemoteAuthFailureExitsNonzero(t *testing.T) {
	addr := startTestServer(t)
	_, stderr, code := runCLI(t,
		[]string{"-quiet", "-connect", addr, "-user", "admin", "-secret", "wrong"}, "")
	if code == 0 {
		t.Fatal("wrong secret exited 0")
	}
	if !strings.Contains(stderr, "authz.auth_failed") {
		t.Errorf("stderr misses the stable code: %s", stderr)
	}
}

func TestRemoteStatementErrorKeepsShellAlive(t *testing.T) {
	addr := startTestServer(t)
	in := strings.Join([]string{
		"SELECT N FROM NoSuchTable;",
		"CREATE TABLE G (N INT);",
		"\\q",
	}, "\n") + "\n"
	stdout, stderr, code := runCLI(t,
		[]string{"-quiet", "-connect", addr, "-user", "admin", "-secret", "cli-secret"}, in)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stderr, "catalog.table_not_found") {
		t.Errorf("stderr misses categorized error: %s", stderr)
	}
	if !strings.Contains(stdout, "table G created") {
		t.Errorf("shell died after statement error:\n%s", stdout)
	}
}

func TestConnectFlagConflicts(t *testing.T) {
	_, stderr, code := runCLI(t,
		[]string{"-connect", "127.0.0.1:1", "-data", "x.db"}, "")
	if code != 2 {
		t.Fatalf("exit %d, want usage error 2 (stderr: %s)", code, stderr)
	}
}
