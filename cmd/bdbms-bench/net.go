package main

// Network benchmark mode: `bdbms-bench -net` drives a bdbms-server with N
// concurrent client connections and reports throughput plus latency
// percentiles — the load generator for the server subsystem, sized to be
// meaningful anywhere from 100 to 10k connections.
//
// With -addr it targets a running server (credentials via -user/-secret);
// without, it spawns an in-process server on a loopback port, so
// `bdbms-bench -net -conns 100 -duration 1s` is a self-contained smoke.
//
// Workloads, all through prepared statements:
//
//	point  — indexed point SELECTs over the seeded rows
//	insert — prepared single-row INSERTs (disjoint key ranges per conn)
//	mixed  — 80% point reads, 20% transactional read-modify-writes
//	         (BEGIN; UPDATE; COMMIT), the contended OLTP shape

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"bdbms"
	"bdbms/internal/server"
	"bdbms/internal/server/client"
)

type netConfig struct {
	addr     string // empty = spawn an in-process server
	user     string
	secret   string
	conns    int
	duration time.Duration
	workload string
	rows     int // seeded table size
}

// runNet executes the network benchmark and returns a process exit code.
func runNet(cfg netConfig, out io.Writer) int {
	if cfg.conns <= 0 || cfg.rows <= 0 || cfg.duration <= 0 {
		fmt.Fprintln(out, "bdbms-bench -net: -conns, -rows and -duration must be positive")
		return 2
	}
	switch cfg.workload {
	case "point", "insert", "mixed":
	default:
		fmt.Fprintf(out, "bdbms-bench -net: unknown workload %q (want point, insert or mixed)\n", cfg.workload)
		return 2
	}

	addr := cfg.addr
	if addr == "" {
		var stop func()
		var err error
		addr, stop, err = spawnServer(cfg)
		if err != nil {
			fmt.Fprintf(out, "bdbms-bench -net: spawn server: %v\n", err)
			return 1
		}
		defer stop()
	}

	// Seed through the wire so the tool works against a remote server too.
	// A pre-existing Bench table is reused as-is.
	if err := seedBench(addr, cfg); err != nil {
		fmt.Fprintf(out, "bdbms-bench -net: seed: %v\n", err)
		return 1
	}

	fmt.Fprintf(out, "workload=%s conns=%d duration=%v rows=%d server=%s\n",
		cfg.workload, cfg.conns, cfg.duration, cfg.rows, addr)

	type workerResult struct {
		lats []time.Duration
		errs map[string]int // op failures, keyed by errcode category
		err  error          // first hard failure (dial/prepare), fatal for the run
	}
	results := make([]workerResult, cfg.conns)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.duration)
	for w := 0; w < cfg.conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &results[w]
			c, err := client.DialTimeout(addr, cfg.user, cfg.secret, 30*time.Second)
			if err != nil {
				r.err = fmt.Errorf("conn %d: %w", w, err)
				return
			}
			defer c.Close()
			read, err := c.Prepare(`SELECT V FROM Bench WHERE ID = ?`)
			if err != nil {
				r.err = fmt.Errorf("conn %d prepare: %w", w, err)
				return
			}
			ins, err := c.Prepare(`INSERT INTO Bench VALUES (?, ?)`)
			if err != nil {
				r.err = fmt.Errorf("conn %d prepare: %w", w, err)
				return
			}
			rng := rand.New(rand.NewSource(int64(w)*2654435761 + 1))
			// Disjoint insert key space per connection, above the seed range.
			nextKey := int64(cfg.rows) + int64(w+1)<<32
			for op := 0; time.Now().Before(deadline); op++ {
				var err error
				opStart := time.Now()
				switch {
				case cfg.workload == "point" || (cfg.workload == "mixed" && op%5 != 0):
					err = pointRead(read, rng.Intn(cfg.rows))
				case cfg.workload == "insert":
					_, _, err = ins.Exec(nextKey, "payload")
					nextKey++
				default: // mixed write: transactional read-modify-write
					err = rmw(c, rng.Intn(cfg.rows))
				}
				if err != nil {
					if r.errs == nil {
						r.errs = make(map[string]int)
					}
					r.errs[errCategory(err)]++
					continue
				}
				r.lats = append(r.lats, time.Since(opStart))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	errs := 0
	byCode := make(map[string]int)
	for i := range results {
		if results[i].err != nil {
			fmt.Fprintf(out, "bdbms-bench -net: %v\n", results[i].err)
			return 1
		}
		all = append(all, results[i].lats...)
		for code, n := range results[i].errs {
			byCode[code] += n
			errs += n
		}
	}
	fmt.Fprintf(out, "ops=%d errors=%d%s elapsed=%v\n",
		len(all), errs, errBreakdown(byCode), elapsed.Round(time.Millisecond))
	if len(all) == 0 {
		// Every single operation failed: there are no latencies to rank, so
		// report the failure (with the breakdown above saying why) instead
		// of dividing by zero.
		fmt.Fprintln(out, "bdbms-bench -net: no operation completed")
		return 1
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(all)-1))
		return all[idx]
	}
	qps := float64(len(all)) / elapsed.Seconds()
	fmt.Fprintf(out, "qps=%.0f p50=%v p95=%v p99=%v max=%v\n",
		qps, pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), all[len(all)-1].Round(time.Microsecond))
	return 0
}

// errCategory buckets an operation failure for the errors-by-code report:
// the server's stable errcode when it sent one, "transport" otherwise.
func errCategory(err error) string {
	var se *client.ServerError
	if errors.As(err, &se) {
		return string(se.Code)
	}
	return "transport"
}

// errBreakdown renders ` [code=n code=n ...]` sorted by code, or "" when the
// run had no errors — keeping the `errors=0` token stable for scripts that
// grep it.
func errBreakdown(byCode map[string]int) string {
	if len(byCode) == 0 {
		return ""
	}
	codes := make([]string, 0, len(byCode))
	for code := range byCode {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	var b strings.Builder
	b.WriteString(" [")
	for i, code := range codes {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", code, byCode[code])
	}
	b.WriteByte(']')
	return b.String()
}

func pointRead(read *client.Stmt, id int) error {
	rows, err := read.Query(id)
	if err != nil {
		return err
	}
	for rows.Next() {
	}
	return rows.Close()
}

// rmw is the transactional read-modify-write: the contended shape — every
// transaction here updates the same table, so they serialize on its write
// latch (readers, on MVCC snapshots, never wait on them).
func rmw(c *client.Conn, id int) error {
	if err := c.Begin(); err != nil {
		return err
	}
	if _, _, err := c.Exec(`UPDATE Bench SET V = ? WHERE ID = ?`, "touched", id); err != nil {
		c.Rollback()
		return err
	}
	return c.Commit()
}

// spawnServer starts an in-process server over a fresh memory database.
func spawnServer(cfg netConfig) (addr string, stop func(), err error) {
	db := bdbms.Open()
	db.SetCredential(cfg.user, cfg.secret)
	srv, err := server.New(server.Config{DB: db, MaxConns: cfg.conns + 16})
	if err != nil {
		db.Close()
		return "", nil, err
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		db.Close()
		return "", nil, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveDone
		db.Close()
	}
	return srv.Addr().String(), stop, nil
}

// seedBench creates and fills the Bench table over the wire. An existing
// table (remote server reuse) is kept as-is.
func seedBench(addr string, cfg netConfig) error {
	c, err := client.DialTimeout(addr, cfg.user, cfg.secret, 30*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	if _, _, err := c.Exec(`CREATE TABLE Bench (ID INT NOT NULL PRIMARY KEY, V TEXT)`); err != nil {
		// Assume "already exists" from a previous run against the same
		// server; the point-read keyspace [0, rows) is still valid.
		return nil
	}
	ins, err := c.Prepare(`INSERT INTO Bench VALUES (?, ?)`)
	if err != nil {
		return err
	}
	if err := c.Begin(); err != nil {
		return err
	}
	for i := 0; i < cfg.rows; i++ {
		if _, _, err := ins.Exec(i, fmt.Sprintf("value-%06d", i)); err != nil {
			c.Rollback()
			return err
		}
	}
	return c.Commit()
}
