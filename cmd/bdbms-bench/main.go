// Command bdbms-bench regenerates the paper's evaluation: one table per
// experiment E1-E9 of DESIGN.md (the quantitative claims of Section 7 plus
// the behaviour each concept figure depicts), printed in a paper-style
// layout. EXPERIMENTS.md records a captured run next to the corresponding
// claim from the paper.
//
// Usage:
//
//	bdbms-bench [-experiment E1|E2|...|E11|all] [-scale 1.0]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bdbms"
	"bdbms/internal/annotation"
	"bdbms/internal/biogen"
	"bdbms/internal/btree"
	"bdbms/internal/dependency"
	"bdbms/internal/provenance"
	"bdbms/internal/rtree"
	"bdbms/internal/sbctree"
	"bdbms/internal/spgist"
	"bdbms/internal/stringbtree"
	"bdbms/internal/value"
)

func main() {
	exp := flag.String("experiment", "all", "experiment to run (E1..E11 or all)")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	netMode := flag.Bool("net", false, "network benchmark: drive a bdbms-server with concurrent client connections instead of running E1-E9")
	addr := flag.String("addr", "", "-net: server address (empty = spawn an in-process server)")
	user := flag.String("user", "bench", "-net: login user")
	secret := flag.String("secret", "bench", "-net: login secret")
	conns := flag.Int("conns", 100, "-net: concurrent client connections")
	duration := flag.Duration("duration", 3*time.Second, "-net: measurement duration")
	workload := flag.String("workload", "mixed", "-net: point, insert or mixed")
	rows := flag.Int("rows", 10000, "-net: seeded Bench table size")
	flag.Parse()

	if *netMode {
		os.Exit(runNet(netConfig{
			addr: *addr, user: *user, secret: *secret, conns: *conns,
			duration: *duration, workload: *workload, rows: *rows,
		}, os.Stdout))
	}

	experiments := []struct {
		name string
		desc string
		run  func(scale float64)
	}{
		{"E1", "SBC-tree storage reduction vs String B-tree (Section 7.2)", runE1},
		{"E2", "SBC-tree insertion I/O vs String B-tree (Section 7.2)", runE2},
		{"E3", "SBC-tree search latency vs String B-tree (Section 7.2)", runE3},
		{"E4", "SP-GiST (trie/kd-tree/quadtree) vs B+-tree/R-tree (Section 7.1)", runE4},
		{"E5", "Rectangle vs per-cell annotation storage (Figure 5)", runE5},
		{"E6", "A-SQL annotation propagation vs manual 3-step plan (Section 3)", runE6},
		{"E7", "Dependency cascade and outdated bitmaps (Figures 9-10)", runE7},
		{"E8", "Content-based approval overhead and rollback (Figure 11)", runE8},
		{"E9", "Provenance queries at multiple granularities (Figure 8)", runE9},
		{"E10", "Vectorized scan/filter/aggregate vs row-at-a-time execution", runE10},
		{"E11", "Cost-based join ordering vs syntactic FROM order", runE11},
	}
	ran := 0
	for _, e := range experiments {
		if *exp != "all" && !strings.EqualFold(*exp, e.name) {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", e.name, e.desc)
		e.run(*scale)
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(1)
	}
}

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		v = 1
	}
	return v
}

// mustPrepare / mustStmt load workloads through prepared statements: the
// data-generation loops bind `?` arguments instead of re-parsing an INSERT
// per row, which keeps experiment setup time out of the measured sections.
func mustPrepare(db *bdbms.DB, sql string) *bdbms.Stmt {
	stmt, err := db.Prepare(sql)
	if err != nil {
		panic(err)
	}
	return stmt
}

func mustStmt(stmt *bdbms.Stmt, args ...any) {
	if _, err := stmt.Exec(args...); err != nil {
		panic(err)
	}
}

// --- E1 / E2 / E3: SBC-tree vs String B-tree -----------------------------------------------

func buildSequenceIndexes(n, minLen, maxLen int, meanRun float64, seed int64) ([]string, *sbctree.Index, *stringbtree.Index) {
	gen := biogen.New(seed)
	seqs := gen.SecondaryStructures(n, minLen, maxLen, meanRun)
	sbc := sbctree.New()
	sbt := stringbtree.New()
	for i, s := range seqs {
		sbc.Insert(int64(i+1), s)
		sbt.Insert(int64(i+1), s)
	}
	return seqs, sbc, sbt
}

func runE1(scale float64) {
	fmt.Printf("%-10s %-10s %16s %16s %12s %12s\n", "sequences", "mean-len", "StringBTree(B)", "SBC-tree(B)", "reduction", "pages-ratio")
	for _, cfg := range []struct{ n, minLen, maxLen int }{
		{scaled(500, scale), 256, 512},
		{scaled(2000, scale), 256, 1024},
		{scaled(5000, scale), 512, 1024},
	} {
		_, sbc, sbt := buildSequenceIndexes(cfg.n, cfg.minLen, cfg.maxLen, 14, 11)
		red := float64(sbt.StorageBytes()) / float64(sbc.StorageBytes())
		pr := float64(sbt.EstimatePages(4096)) / float64(sbc.EstimatePages(4096))
		fmt.Printf("%-10d %-10d %16d %16d %11.1fx %11.1fx\n",
			cfg.n, (cfg.minLen+cfg.maxLen)/2, sbt.StorageBytes(), sbc.StorageBytes(), red, pr)
	}
	fmt.Println("paper claim: up to an order of magnitude storage reduction")
}

func runE2(scale float64) {
	fmt.Printf("%-10s %18s %18s %14s\n", "sequences", "StringBTree-writes", "SBC-tree-writes", "I/O-saving")
	for _, n := range []int{scaled(500, scale), scaled(2000, scale), scaled(5000, scale)} {
		_, sbc, sbt := buildSequenceIndexes(n, 256, 1024, 14, 13)
		sw := sbt.IOStats().NodeWrites
		cw := sbc.IOStats().NodeWrites
		saving := 100 * (1 - float64(cw)/float64(sw))
		fmt.Printf("%-10d %18d %18d %13.1f%%\n", n, sw, cw, saving)
	}
	fmt.Println("paper claim: up to 30% fewer I/Os for insertions (shape: SBC-tree <= String B-tree)")
}

func runE3(scale float64) {
	n := scaled(2000, scale)
	seqs, sbc, sbt := buildSequenceIndexes(n, 256, 1024, 14, 17)
	gen := biogen.New(99)
	var patterns []string
	for i := 0; i < 1000; i++ {
		src := seqs[i%len(seqs)]
		start := (i * 37) % (len(src) - 20)
		patterns = append(patterns, src[start:start+6+(i%10)])
	}
	_ = gen
	measure := func(fn func(p string) int) (time.Duration, int) {
		start := time.Now()
		total := 0
		for _, p := range patterns {
			total += fn(p)
		}
		return time.Since(start) / time.Duration(len(patterns)), total
	}
	sbcSub, sbcHits := measure(func(p string) int { return len(sbc.SubstringSearch(p)) })
	sbtSub, sbtHits := measure(func(p string) int {
		ids := map[int64]bool{}
		for _, m := range sbt.SubstringSearch(p) {
			ids[m.SeqID] = true
		}
		return len(ids)
	})
	sbcPre, _ := measure(func(p string) int { return len(sbc.PrefixSearch(p)) })
	sbtPre, _ := measure(func(p string) int { return len(sbt.PrefixSearch(p)) })
	sbcRange, _ := measure(func(p string) int { return len(sbc.RangeSearch(p[:2], "")) })
	sbtRange, _ := measure(func(p string) int { return len(sbt.RangeSearch(p[:2], "")) })

	fmt.Printf("%-22s %16s %16s %10s\n", "operation (1000 queries)", "StringBTree/op", "SBC-tree/op", "agree")
	fmt.Printf("%-22s %16v %16v %10v\n", "substring", sbtSub, sbcSub, sbcHits == sbtHits)
	fmt.Printf("%-22s %16v %16v\n", "prefix", sbtPre, sbcPre)
	fmt.Printf("%-22s %16v %16v\n", "range", sbtRange, sbcRange)
	fmt.Println("paper claim: SBC-tree retains optimal search performance over compressed data")
}

// --- E4: SP-GiST vs B+-tree / R-tree ------------------------------------------------------

func runE4(scale float64) {
	n := scaled(50000, scale)
	gen := biogen.New(7)
	pts := gen.Points(n, 10000)

	kd := spgist.New(spgist.KDTreeOps{})
	quad := spgist.New(spgist.QuadtreeOps{})
	rt := rtree.New()
	for i, p := range pts {
		kd.Insert(spgist.Point{X: p[0], Y: p[1]}, i)
		quad.Insert(spgist.Point{X: p[0], Y: p[1]}, i)
		rt.Insert(rtree.NewPoint(p[0], p[1]), i)
	}
	queries := gen.Points(2000, 10000)
	timeIt := func(fn func()) time.Duration {
		start := time.Now()
		fn()
		return time.Since(start) / time.Duration(len(queries))
	}
	exactKD := timeIt(func() {
		for _, q := range queries {
			kd.Exact(spgist.Point{X: q[0], Y: q[1]})
		}
	})
	exactQuad := timeIt(func() {
		for _, q := range queries {
			quad.Exact(spgist.Point{X: q[0], Y: q[1]})
		}
	})
	exactRT := timeIt(func() {
		for _, q := range queries {
			rt.SearchAll(rtree.NewPoint(q[0], q[1]))
		}
	})
	rangeKD := timeIt(func() {
		for _, q := range queries {
			kd.Search(spgist.RangeQuery{MinX: q[0], MinY: q[1], MaxX: q[0] + 100, MaxY: q[1] + 100})
		}
	})
	rangeRT := timeIt(func() {
		for _, q := range queries {
			rt.SearchAll(rtree.Rect{MinX: q[0], MinY: q[1], MaxX: q[0] + 100, MaxY: q[1] + 100})
		}
	})
	knnKD := timeIt(func() {
		for _, q := range queries {
			_, _ = kd.KNN(spgist.Point{X: q[0], Y: q[1]}, 5)
		}
	})
	knnRT := timeIt(func() {
		for _, q := range queries {
			rt.Nearest(q[0], q[1], 5)
		}
	})

	fmt.Printf("points = %d, 2000 queries each\n", n)
	fmt.Printf("%-14s %14s %14s %14s\n", "operation", "SP-GiST kd", "SP-GiST quad", "R-tree")
	fmt.Printf("%-14s %14v %14v %14v\n", "exact match", exactKD, exactQuad, exactRT)
	fmt.Printf("%-14s %14v %14s %14v\n", "range 100x100", rangeKD, "-", rangeRT)
	fmt.Printf("%-14s %14v %14s %14v\n", "5-NN", knnKD, "-", knnRT)

	// Keyword workload: trie vs B+-tree.
	words := gen.Keywords(n, 12)
	trie := spgist.New(spgist.TrieOps{})
	bt := btree.New(btree.DefaultOrder)
	for i, w := range words {
		trie.Insert(w, i)
		bt.Insert([]byte(w), []byte{byte(i)})
	}
	prefixes := gen.Keywords(2000, 4)
	trieTime := timeIt(func() {
		for _, p := range prefixes {
			trie.Search(spgist.PrefixQuery{Prefix: p[:2]})
		}
	})
	btTime := timeIt(func() {
		for _, p := range prefixes {
			bt.AscendPrefix([]byte(p[:2]), func([]byte, [][]byte) bool { return true })
		}
	})
	regexTime := timeIt(func() {
		for _, p := range prefixes {
			trie.Search(spgist.RegexQuery{Pattern: p[:2] + ".*"})
		}
	})
	btRegexTime := timeIt(func() {
		for _, p := range prefixes {
			// The B+-tree has no native regex support: full scan + match.
			bt.Ascend(func(k []byte, _ [][]byte) bool {
				spgist.MatchSimpleRegex(p[:2]+".*", string(k))
				return true
			})
		}
	})
	fmt.Printf("%-14s %14s %14s %14s\n", "operation", "SP-GiST trie", "", "B+-tree")
	fmt.Printf("%-14s %14v %14s %14v\n", "prefix match", trieTime, "", btTime)
	fmt.Printf("%-14s %14v %14s %14v\n", "regex match", regexTime, "", btRegexTime)
	fmt.Println("paper claim: space-partitioning indexes show performance potential over B+-tree / R-tree")
}

// --- E5: annotation storage schemes ------------------------------------------------------

func runE5(scale float64) {
	rows := scaled(5000, scale)
	cols := 4
	build := func(store annotation.Store) (*bdbms.DB, time.Duration, int, time.Duration) {
		opts := bdbms.Options{}
		if store.Name() == "cell" {
			opts.CellLevelAnnotations = true
		}
		db, _ := bdbms.OpenWith(opts)
		db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, GSequence SEQUENCE, Score FLOAT)`)
		db.MustExec(`CREATE ANNOTATION TABLE Ann ON Gene`)
		gen := biogen.New(3)
		ins := mustPrepare(db, `INSERT INTO Gene VALUES (?, ?, ?, ?)`)
		for i := 0; i < rows; i++ {
			mustStmt(ins, biogen.GeneID(i), gen.GeneName(i), gen.DNASequence(16), i%100)
		}
		start := time.Now()
		// Column-level annotation (covers every row), 20 tuple-level
		// annotations and 50 cell-level annotations.
		db.MustExec(`ADD ANNOTATION TO Gene.Ann VALUE '<Annotation>obtained from GenoBase</Annotation>' ON (SELECT GSequence FROM Gene)`)
		for i := 0; i < 20; i++ {
			db.MustExec(fmt.Sprintf(`ADD ANNOTATION TO Gene.Ann VALUE '<Annotation>curated %d</Annotation>' ON (SELECT * FROM Gene WHERE GID = '%s')`, i, biogen.GeneID(i*7%rows)))
		}
		for i := 0; i < 50; i++ {
			db.MustExec(fmt.Sprintf(`ADD ANNOTATION TO Gene.Ann VALUE '<Annotation>note %d</Annotation>' ON (SELECT GName FROM Gene WHERE GID = '%s')`, i, biogen.GeneID(i*3%rows)))
		}
		addTime := time.Since(start)
		start = time.Now()
		res := db.MustExec(`SELECT GID, GSequence FROM Gene ANNOTATION(Ann)`)
		queryTime := time.Since(start)
		_ = res
		return db, addTime, db.Annotations().StorageRecords(), queryTime
	}
	_, rectAdd, rectRecords, rectQuery := build(annotation.NewRectStore())
	_, cellAdd, cellRecords, cellQuery := build(annotation.NewCellStore())
	fmt.Printf("table: %d rows x %d columns, 71 annotations at mixed granularity\n", rows, cols)
	fmt.Printf("%-26s %16s %16s\n", "metric", "rectangle (F.5)", "per-cell (F.3)")
	fmt.Printf("%-26s %16d %16d\n", "storage records", rectRecords, cellRecords)
	fmt.Printf("%-26s %16v %16v\n", "ADD ANNOTATION time", rectAdd, cellAdd)
	fmt.Printf("%-26s %16v %16v\n", "annotated full scan", rectQuery, cellQuery)
	fmt.Printf("record reduction: %.0fx\n", float64(cellRecords)/float64(rectRecords))
}

// --- E6: A-SQL vs the manual three-step plan ----------------------------------------------

func runE6(scale float64) {
	rows := scaled(2000, scale)
	db := bdbms.Open()
	db.MustExec(`CREATE TABLE DB1_Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, GSequence SEQUENCE)`)
	db.MustExec(`CREATE TABLE DB2_Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, GSequence SEQUENCE)`)
	db.MustExec(`CREATE ANNOTATION TABLE GAnnotation ON DB1_Gene`)
	db.MustExec(`CREATE ANNOTATION TABLE GAnnotation ON DB2_Gene`)
	gen := biogen.New(5)
	ins1 := mustPrepare(db, `INSERT INTO DB1_Gene VALUES (?, ?, ?)`)
	ins2 := mustPrepare(db, `INSERT INTO DB2_Gene VALUES (?, ?, ?)`)
	for i := 0; i < rows; i++ {
		id, name, seq := biogen.GeneID(i), gen.GeneName(i), gen.DNASequence(24)
		mustStmt(ins1, id, name, seq)
		if i%2 == 0 { // half the genes are shared
			mustStmt(ins2, id, name, seq)
		}
	}
	db.MustExec(`ADD ANNOTATION TO DB1_Gene.GAnnotation VALUE '<Annotation>obtained from RegulonDB</Annotation>' ON (SELECT * FROM DB1_Gene)`)
	db.MustExec(`ADD ANNOTATION TO DB2_Gene.GAnnotation VALUE '<Annotation>obtained from GenoBase</Annotation>' ON (SELECT GSequence FROM DB2_Gene)`)

	asql := `SELECT GID, GName, GSequence FROM DB1_Gene ANNOTATION(GAnnotation)
	         INTERSECT
	         SELECT GID, GName, GSequence FROM DB2_Gene ANNOTATION(GAnnotation)`
	start := time.Now()
	res := db.MustExec(asql)
	asqlTime := time.Since(start)
	annCount := 0
	for _, r := range res.Rows {
		annCount += len(r.AnnotationsFlat())
	}

	// The manual plan of Section 3: (a) intersect the data columns, (b) join
	// back to DB1_Gene for its annotations, (c) join to DB2_Gene and union the
	// annotations — three statements and client-side glue.
	start = time.Now()
	stepA := db.MustExec(`SELECT GID, GName, GSequence FROM DB1_Gene INTERSECT SELECT GID, GName, GSequence FROM DB2_Gene`)
	manualAnn := 0
	for _, r := range stepA.Rows {
		gid := r.Values[0].Text()
		b := db.MustExec(fmt.Sprintf(`SELECT GID, GName, GSequence FROM DB1_Gene ANNOTATION(GAnnotation) WHERE GID = '%s'`, gid))
		c := db.MustExec(fmt.Sprintf(`SELECT GID, GName, GSequence FROM DB2_Gene ANNOTATION(GAnnotation) WHERE GID = '%s'`, gid))
		seen := map[int64]bool{}
		for _, rr := range append(b.Rows, c.Rows...) {
			for _, a := range rr.AnnotationsFlat() {
				if !seen[a.ID] {
					seen[a.ID] = true
					manualAnn++
				}
			}
		}
	}
	manualTime := time.Since(start)

	fmt.Printf("common genes: %d of %d\n", len(res.Rows), rows)
	fmt.Printf("%-34s %12s %14s %12s\n", "plan", "statements", "time", "annotations")
	fmt.Printf("%-34s %12d %14v %12d\n", "A-SQL SELECT ... ANNOTATION", 1, asqlTime, annCount)
	fmt.Printf("%-34s %12s %14v %12d\n", "manual steps (a)-(c)", "1+2N", manualTime, manualAnn)
	fmt.Printf("results agree: %v\n", annCount == manualAnn && len(res.Rows) == len(stepA.Rows))
}

// --- E7: dependency cascades and bitmaps ----------------------------------------------------

func runE7(scale float64) {
	fmt.Printf("%-8s %-10s %12s %12s %14s %14s %12s\n",
		"genes", "fan-out", "modified", "recomputed", "marked-stale", "bitmap-raw", "bitmap-rle")
	for _, fanout := range []int{1, 4, 16} {
		genes := scaled(500, scale)
		db := bdbms.Open()
		db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)`)
		db.MustExec(`CREATE TABLE Protein (PName TEXT, GID TEXT, PSequence SEQUENCE, PFunction TEXT)`)
		db.MustExec(`CREATE INDEX ON Protein (GID)`)
		gen := biogen.New(int64(fanout))
		insGene := mustPrepare(db, `INSERT INTO Gene VALUES (?, ?)`)
		insProt := mustPrepare(db, `INSERT INTO Protein VALUES (?, ?, ?, 'Hypothetical protein')`)
		for i := 0; i < genes; i++ {
			seq := gen.DNASequence(60)
			mustStmt(insGene, biogen.GeneID(i), value.NewSequence(seq))
			for f := 0; f < fanout; f++ {
				mustStmt(insProt, fmt.Sprintf("p%d_%d", i, f), biogen.GeneID(i), value.NewSequence(biogen.Translate(seq)))
			}
		}
		dep := db.Dependencies()
		dep.AddRule(dependency.Rule{
			Sources: []dependency.ColumnRef{{Table: "Gene", Column: "GSequence"}},
			Targets: []dependency.ColumnRef{{Table: "Protein", Column: "PSequence"}},
			Proc: dependency.Procedure{Name: "Prediction tool P", Executable: true,
				Apply: func(in []value.Value) (value.Value, error) {
					return value.NewSequence(biogen.Translate(in[0].Text())), nil
				}},
			Link: &dependency.Link{SourceColumn: "GID", TargetColumn: "GID"},
		})
		dep.AddRule(dependency.Rule{
			Sources: []dependency.ColumnRef{{Table: "Protein", Column: "PSequence"}},
			Targets: []dependency.ColumnRef{{Table: "Protein", Column: "PFunction"}},
			Proc:    dependency.Procedure{Name: "Lab experiment", Executable: false},
		})
		modified := genes / 10
		for i := 0; i < modified; i++ {
			db.MustExec(fmt.Sprintf(`UPDATE Gene SET GSequence = '%s' WHERE GID = '%s'`,
				gen.DNASequence(60), biogen.GeneID(i*10)))
		}
		recomputed, marked := 0, 0
		for _, ev := range dep.Events() {
			if ev.Recomputed {
				recomputed++
			} else {
				marked++
			}
		}
		bm := dep.Bitmap("Protein")
		maxRow := int64(genes * fanout)
		fmt.Printf("%-8d %-10d %12d %12d %14d %13dB %11dB\n",
			genes, fanout, modified, recomputed, marked, bm.RawSize(maxRow), bm.CompressedSize(maxRow))
	}
}

// --- E8: content-based approval --------------------------------------------------------------

func runE8(scale float64) {
	n := scaled(2000, scale)
	run := func(approval bool) (time.Duration, int) {
		db := bdbms.Open()
		db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)`)
		if approval {
			db.MustExec(`START CONTENT APPROVAL ON Gene APPROVED BY labadmin`)
		}
		gen := biogen.New(4)
		start := time.Now()
		for i := 0; i < n; i++ {
			db.MustExec(fmt.Sprintf(`INSERT INTO Gene VALUES ('%s', '%s')`, biogen.GeneID(i), gen.DNASequence(30)))
		}
		for i := 0; i < n/2; i++ {
			db.MustExec(fmt.Sprintf(`UPDATE Gene SET GSequence = '%s' WHERE GID = '%s'`, gen.DNASequence(30), biogen.GeneID(i)))
		}
		elapsed := time.Since(start)
		pending := 0
		if approval {
			pending = len(db.Authorization().Pending("Gene"))
		}
		return elapsed, pending
	}
	offTime, _ := run(false)
	onTime, pending := run(true)
	fmt.Printf("workload: %d inserts + %d updates\n", n, n/2)
	fmt.Printf("%-30s %14s %14s\n", "configuration", "time", "pending ops")
	fmt.Printf("%-30s %14v %14d\n", "approval OFF", offTime, 0)
	fmt.Printf("%-30s %14v %14d\n", "approval ON", onTime, pending)
	fmt.Printf("logging overhead: %.1f%%\n", 100*(float64(onTime)/float64(offTime)-1))

	// Rollback correctness: disapprove every update and verify the data
	// returns to its pre-update state.
	db := bdbms.Open()
	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GSequence SEQUENCE)`)
	db.MustExec(`START CONTENT APPROVAL ON Gene APPROVED BY labadmin`)
	db.Authorization().MakeAdmin("labadmin")
	gen := biogen.New(9)
	original := map[string]string{}
	for i := 0; i < 200; i++ {
		seq := gen.DNASequence(30)
		original[biogen.GeneID(i)] = seq
		db.MustExec(fmt.Sprintf(`INSERT INTO Gene VALUES ('%s', '%s')`, biogen.GeneID(i), seq))
	}
	for _, op := range db.Authorization().Pending("Gene") {
		db.Authorization().Approve(op.ID, "labadmin")
	}
	for i := 0; i < 200; i++ {
		db.MustExec(fmt.Sprintf(`UPDATE Gene SET GSequence = 'N%s' WHERE GID = '%s'`, gen.DNASequence(5), biogen.GeneID(i)))
	}
	admin := db.Session("labadmin")
	for _, op := range db.Authorization().Pending("Gene") {
		if _, err := admin.Exec(fmt.Sprintf("DISAPPROVE OPERATION %d", op.ID)); err != nil {
			panic(err)
		}
	}
	restored := 0
	res := db.MustExec(`SELECT GID, GSequence FROM Gene`)
	for _, r := range res.Rows {
		if original[r.Values[0].Text()] == r.Values[1].Text() {
			restored++
		}
	}
	fmt.Printf("rollback check: %d/200 disapproved updates fully reverted\n", restored)
}

// --- E10: vectorized analytics ----------------------------------------------------------------

func runE10(scale float64) {
	rows := scaled(100000, scale)
	db := bdbms.Open()
	db.MustExec(`CREATE TABLE Events (ID INT NOT NULL PRIMARY KEY, Grp TEXT, Score INT)`)
	ins := mustPrepare(db, `INSERT INTO Events VALUES (?, ?, ?)`)
	for i := 0; i < rows; i++ {
		mustStmt(ins, i+1, fmt.Sprintf("g%03d", i%997), (i*7919)%100003)
	}
	queries := []struct{ name, sql string }{
		{"full-scan aggregate", `SELECT COUNT(*), SUM(Score), MIN(Score), MAX(Score) FROM Events WHERE Score < 50000`},
		{"GROUP BY (997 groups)", `SELECT Grp, COUNT(*), SUM(Score), MAX(Score) FROM Events GROUP BY Grp`},
	}
	fmt.Printf("table: %d rows; both paths return identical results\n", rows)
	fmt.Printf("%-24s %14s %14s %10s %8s\n", "query", "row-at-a-time", "vectorized", "speedup", "agree")
	for _, q := range queries {
		run := func(noVec bool) (time.Duration, int) {
			s := db.Session("bench")
			s.NoVectorize = noVec
			// One warm-up execution: the first vectorized scan pays the
			// one-time columnar mirror build, which is amortized in steady
			// state and would otherwise skew a cold measurement.
			if _, err := s.Exec(q.sql); err != nil {
				panic(err)
			}
			const reps = 3
			start := time.Now()
			n := 0
			for r := 0; r < reps; r++ {
				res, err := s.Exec(q.sql)
				if err != nil {
					panic(err)
				}
				n = len(res.Rows)
			}
			return time.Since(start) / reps, n
		}
		vecTime, vecRows := run(false)
		rowTime, rowRows := run(true)
		fmt.Printf("%-24s %14v %14v %9.1fx %8v\n",
			q.name, rowTime, vecTime, float64(rowTime)/float64(vecTime), vecRows == rowRows)
	}
	fmt.Println("batch engine: column-major batches through scan, filter and hash aggregation")
}

// --- E11: cost-based join ordering ------------------------------------------------------------

func runE11(scale float64) {
	factRows := scaled(100000, scale)
	db := bdbms.Open()
	db.MustExec(`CREATE TABLE Fact (FID INT NOT NULL PRIMARY KEY, D1 TEXT, D2 TEXT, V INT)`)
	db.MustExec(`CREATE TABLE Dim1 (D1ID INT NOT NULL PRIMARY KEY, Cat TEXT, Name TEXT)`)
	db.MustExec(`CREATE TABLE Dim2 (D2ID TEXT NOT NULL PRIMARY KEY, Tag TEXT)`)
	ins := mustPrepare(db, `INSERT INTO Fact VALUES (?, ?, ?, ?)`)
	for i := 0; i < factRows; i++ {
		mustStmt(ins, i, fmt.Sprintf("A%03d", i%100), fmt.Sprintf("B%03d", i%100), i%7919)
	}
	for i := 0; i < 1000; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO Dim1 VALUES (%d, 'A%03d', 'attr%d')`, i, i%100, i))
	}
	for i := 0; i < 100; i++ {
		tag := "cold"
		if i == 42 {
			tag = "hot"
		}
		db.MustExec(fmt.Sprintf(`INSERT INTO Dim2 VALUES ('B%03d', '%s')`, i, tag))
	}
	// Build the planner statistics once so both modes plan from one snapshot.
	for _, q := range []string{
		`SELECT COUNT(*) FROM Fact WHERE V = -1`,
		`SELECT COUNT(*) FROM Dim1 WHERE Name = ''`,
		`SELECT COUNT(*) FROM Dim2 WHERE Tag = ''`,
	} {
		db.MustExec(q)
	}
	query := `SELECT d1.Name, f.V FROM Fact f, Dim1 d1, Dim2 d2 WHERE f.D1 = d1.Cat AND f.D2 = d2.D2ID AND d2.Tag = 'hot'`
	fmt.Printf("star: Fact %d rows x Dim1 1000 (10 per category) x Dim2 100 (one 'hot')\n", factRows)
	for _, mode := range []string{"syntactic", "cost-based"} {
		s := db.Session("bench")
		s.NoReorder = mode == "syntactic"
		res, err := s.Exec("EXPLAIN " + query)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s plan:\n", mode)
		for _, r := range res.Rows {
			fmt.Printf("  %s\n", r.Values[0].Text())
		}
	}
	run := func(noReorder bool) (time.Duration, int) {
		s := db.Session("bench")
		s.NoReorder = noReorder
		const reps = 3
		start := time.Now()
		n := 0
		for r := 0; r < reps; r++ {
			res, err := s.Exec(query)
			if err != nil {
				panic(err)
			}
			n = len(res.Rows)
		}
		return time.Since(start) / reps, n
	}
	synTime, synRows := run(true)
	costTime, costRows := run(false)
	fmt.Printf("%-24s %14s %14s %10s %8s\n", "query", "syntactic", "cost-based", "speedup", "agree")
	fmt.Printf("%-24s %14v %14v %9.1fx %8v\n",
		"3-way star join", synTime, costTime, float64(synTime)/float64(costTime), synRows == costRows)
	fmt.Println("ordering: selective dimension joined first, bounding every intermediate result")
}

// --- E9: provenance ---------------------------------------------------------------------------

func runE9(scale float64) {
	rows := scaled(2000, scale)
	db := bdbms.Open()
	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, GSequence SEQUENCE)`)
	gen := biogen.New(6)
	ins := mustPrepare(db, `INSERT INTO Gene VALUES (?, ?, ?)`)
	for i := 0; i < rows; i++ {
		mustStmt(ins, biogen.GeneID(i), gen.GeneName(i), gen.DNASequence(20))
	}
	prov := db.Provenance()
	prov.RegisterAgent("integrator")
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	start := time.Now()
	// Whole-table copy from S1, column overwrite from S3, per-row updates by P1.
	prov.Attach("integrator", "Gene",
		provenance.Record{Source: "S1", Action: provenance.ActionCopy, Time: base},
		[]annotation.Region{annotation.RowsRegion("Gene", 1, int64(rows), 3)})
	prov.Attach("integrator", "Gene",
		provenance.Record{Source: "S3", Action: provenance.ActionOverwrite, Time: base.AddDate(0, 1, 0)},
		[]annotation.Region{annotation.ColumnRegion("Gene", 2, int64(rows))})
	for i := 0; i < rows/10; i++ {
		prov.Attach("integrator", "Gene",
			provenance.Record{Program: "P1", Action: provenance.ActionUpdate, Time: base.AddDate(0, 2, i%28)},
			[]annotation.Region{annotation.CellRegion("Gene", int64(i*10+1), 2)})
	}
	attachTime := time.Since(start)

	start = time.Now()
	correct := 0
	for i := 0; i < rows; i++ {
		e, err := prov.SourceAt("Gene", int64(i+1), 2, base.AddDate(0, 6, 0))
		if err != nil {
			continue
		}
		if (i%10 == 0 && e.Record.Program == "P1") || (i%10 != 0 && e.Record.Source == "S3") {
			correct++
		}
	}
	lookupTime := time.Since(start) / time.Duration(rows)
	fmt.Printf("table: %d rows; provenance records: %d (table copy + column overwrite + %d cell updates)\n",
		rows, 2+rows/10, rows/10)
	fmt.Printf("attach time total: %v\n", attachTime)
	fmt.Printf("SourceAt latency per cell: %v\n", lookupTime)
	fmt.Printf("SourceAt answers matching the expected lineage: %d/%d\n", correct, rows)
}
