package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestNetBenchSelfContained smokes every workload against a self-spawned
// server: the run must complete, report qps and percentiles, and see zero
// operation errors.
func TestNetBenchSelfContained(t *testing.T) {
	for _, workload := range []string{"point", "insert", "mixed"} {
		t.Run(workload, func(t *testing.T) {
			var out bytes.Buffer
			code := runNet(netConfig{
				user: "bench", secret: "bench",
				conns: 8, duration: 300 * time.Millisecond,
				workload: workload, rows: 200,
			}, &out)
			if code != 0 {
				t.Fatalf("exit %d:\n%s", code, out.String())
			}
			s := out.String()
			for _, want := range []string{"qps=", "p50=", "p99=", "errors=0"} {
				if !strings.Contains(s, want) {
					t.Errorf("output misses %q:\n%s", want, s)
				}
			}
		})
	}
}

func TestNetBenchValidation(t *testing.T) {
	var out bytes.Buffer
	if code := runNet(netConfig{workload: "nope", conns: 1, rows: 1, duration: time.Second}, &out); code != 2 {
		t.Fatalf("bad workload exit = %d, want 2", code)
	}
	if code := runNet(netConfig{workload: "point", conns: 0, rows: 1, duration: time.Second}, &out); code != 2 {
		t.Fatalf("zero conns exit = %d, want 2", code)
	}
}
