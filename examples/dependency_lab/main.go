// Command dependency_lab reproduces Figures 1, 9 and 10 of the paper: genes,
// the proteins predicted from them and the functions determined by lab
// experiments, linked by procedural dependencies. Modifying a gene sequence
// automatically re-runs the executable prediction tool, marks the
// non-recomputable protein function outdated (the bitmap of Figure 10), and
// propagates OUTDATED warnings with query answers until the curator
// revalidates the cell.
package main

import (
	"fmt"

	"bdbms"
	"bdbms/internal/biogen"
	"bdbms/internal/dependency"
	"bdbms/internal/value"
)

func main() {
	db := bdbms.Open()
	defer db.Close()

	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, GSequence SEQUENCE)`)
	db.MustExec(`CREATE TABLE Protein (PName TEXT, GID TEXT, PSequence SEQUENCE, PFunction TEXT)`)
	db.MustExec(`CREATE INDEX ON Protein (GID)`)

	gen := biogen.New(42)
	genes := gen.Genes(3, 90)
	names := []string{"mraW", "ftsI", "yabP"}
	functions := []string{"Exhibitor", "Cell wall formation", "Hypothetical protein"}
	for i, g := range genes {
		db.MustExec(fmt.Sprintf(`INSERT INTO Gene VALUES ('%s', '%s', '%s')`, g.ID, names[i], g.Sequence))
		db.MustExec(fmt.Sprintf(`INSERT INTO Protein VALUES ('p%s', '%s', '%s', '%s')`,
			names[i], g.ID, biogen.Translate(g.Sequence), functions[i]))
	}

	dep := db.Dependencies()
	// Rule 1: Gene.GSequence --(prediction tool P, executable)--> Protein.PSequence
	mustRule(dep, dependency.Rule{
		Sources: []dependency.ColumnRef{{Table: "Gene", Column: "GSequence"}},
		Targets: []dependency.ColumnRef{{Table: "Protein", Column: "PSequence"}},
		Proc: dependency.Procedure{
			Name: "Prediction tool P", Executable: true,
			Apply: func(in []value.Value) (value.Value, error) {
				return value.NewSequence(biogen.Translate(in[0].Text())), nil
			},
		},
		Link: &dependency.Link{SourceColumn: "GID", TargetColumn: "GID"},
	})
	// Rule 2: Protein.PSequence --(lab experiment, non-executable)--> Protein.PFunction
	mustRule(dep, dependency.Rule{
		Sources: []dependency.ColumnRef{{Table: "Protein", Column: "PSequence"}},
		Targets: []dependency.ColumnRef{{Table: "Protein", Column: "PFunction"}},
		Proc:    dependency.Procedure{Name: "Lab experiment", Executable: false},
	})

	fmt.Println("Declared procedural dependencies:")
	for _, r := range dep.Rules().Rules() {
		fmt.Println("  ", r)
	}
	fmt.Println("Derived rules (the paper's Rule 4):")
	for _, r := range dep.Rules().DeriveRules(3) {
		fmt.Println("  ", r)
	}
	closure := dep.Rules().ProcedureClosure("Prediction tool P")
	fmt.Printf("Closure of procedure P (everything to re-verify if P changes): %v\n\n", closure)

	fmt.Println("Modifying the sequence of gene JW0000 ...")
	newSeq := biogen.New(7).DNASequence(90)
	db.MustExec(fmt.Sprintf(`UPDATE Gene SET GSequence = '%s' WHERE GID = 'JW0000'`, newSeq))

	fmt.Println("Cascade events:")
	for _, ev := range dep.Events() {
		action := "marked OUTDATED"
		if ev.Recomputed {
			action = "recomputed automatically"
		}
		fmt.Printf("  %s row %d col %d: %s (rule: %s)\n", ev.Cell.Table, ev.Cell.RowID, ev.Cell.Col, action, ev.Rule.Proc.Name)
	}

	bm := dep.Bitmap("Protein")
	fmt.Printf("\nOutdated bitmap for Protein (Figure 10): %d set bit(s), RLE-compressed %dB vs raw %dB\n",
		bm.Count(), bm.CompressedSize(3), bm.RawSize(3))

	fmt.Println("\nQuerying the proteins — outdated cells carry a warning annotation:")
	res := db.MustExec(`SELECT PName, PFunction FROM Protein`)
	fmt.Print(bdbms.Render(res))

	fmt.Println("The curator re-verifies pmraW's function and revalidates the cell:")
	if err := dep.Revalidate("Protein", 1, "PFunction"); err != nil {
		panic(err)
	}
	res = db.MustExec(`SELECT PName, PFunction FROM Protein WHERE PName = 'pmraW'`)
	fmt.Print(bdbms.Render(res))
}

func mustRule(dep *dependency.Manager, r dependency.Rule) {
	if _, err := dep.AddRule(r); err != nil {
		panic(err)
	}
}
