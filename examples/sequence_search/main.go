// Command sequence_search reproduces Figure 12 and Section 7 of the paper:
// protein secondary structures are RLE-compressed and indexed with the
// SBC-tree, which answers substring / prefix / range queries without
// decompressing the data; the String B-tree over the uncompressed text is the
// baseline. An SP-GiST trie and kd-tree demonstrate the non-traditional
// access methods on keyword and spatial workloads.
package main

import (
	"fmt"
	"time"

	"bdbms/internal/biogen"
	"bdbms/internal/rle"
	"bdbms/internal/sbctree"
	"bdbms/internal/spgist"
	"bdbms/internal/stringbtree"
)

func main() {
	gen := biogen.New(2026)
	structures := gen.SecondaryStructures(500, 300, 800, 14)

	// Show the compression step of Figure 12 on the first structure.
	first := rle.Encode(structures[0])
	fmt.Printf("Protein secondary structure (first 60 chars): %s...\n", structures[0][:60])
	fmt.Printf("RLE compressed form (first 60 chars):          %s...\n", first.String()[:60])
	fmt.Printf("Compression: %d chars -> %d runs (%.1fx)\n\n",
		first.Len(), first.NumRuns(), first.CompressionRatio())

	sbc := sbctree.New()
	sbt := stringbtree.New()
	start := time.Now()
	for i, s := range structures {
		sbc.Insert(int64(i+1), s)
	}
	sbcBuild := time.Since(start)
	start = time.Now()
	for i, s := range structures {
		sbt.Insert(int64(i+1), s)
	}
	sbtBuild := time.Since(start)

	fmt.Printf("SBC-tree:      %7d entries, %9d bytes, built in %v\n", sbc.NumEntries(), sbc.StorageBytes(), sbcBuild)
	fmt.Printf("String B-tree: %7d entries, %9d bytes, built in %v\n", sbt.NumEntries(), sbt.StorageBytes(), sbtBuild)
	fmt.Printf("Storage reduction: %.1fx\n\n", float64(sbt.StorageBytes())/float64(sbc.StorageBytes()))

	patterns := []string{"HHHHHHHHHHHHHHH", "LLLEEE", "EEEEELLLLLHH", "HLEH"}
	for _, p := range patterns {
		a := sbc.SubstringSearch(p)
		b := sbt.SubstringSearch(p)
		bIDs := map[int64]bool{}
		for _, m := range b {
			bIDs[m.SeqID] = true
		}
		fmt.Printf("Substring %-16q  SBC-tree: %4d sequences   String B-tree: %4d sequences (agree: %v)\n",
			p, len(a), len(bIDs), len(a) == len(bIDs))
	}

	prefix := structures[0][:8]
	fmt.Printf("\nPrefix %q matches %d sequences (SBC-tree, on compressed data)\n",
		prefix, len(sbc.PrefixSearch(prefix)))

	// SP-GiST demonstrations (Section 7.1).
	trie := spgist.New(spgist.TrieOps{})
	for i, kw := range gen.Keywords(5000, 10) {
		trie.Insert(kw, i)
	}
	fmt.Printf("\nSP-GiST trie over 5000 protein keywords: prefix 'MA' -> %d, regex 'MA.*K' -> %d matches\n",
		len(trie.Search(spgist.PrefixQuery{Prefix: "MA"})),
		len(trie.Search(spgist.RegexQuery{Pattern: "MA.*K"})))

	kd := spgist.New(spgist.KDTreeOps{})
	for i, p := range gen.Points(20000, 1000) {
		kd.Insert(spgist.Point{X: p[0], Y: p[1]}, i)
	}
	nn, _ := kd.KNN(spgist.Point{X: 500, Y: 500}, 3)
	fmt.Printf("SP-GiST kd-tree over 20000 protein feature points: 3 nearest neighbours of (500,500):\n")
	for _, item := range nn {
		pt := item.Key.(spgist.Point)
		fmt.Printf("  (%.1f, %.1f)\n", pt.X, pt.Y)
	}
}
