// Command curation_approval reproduces Figure 11 and Section 6 of the paper:
// lab members may update the gene table, but under content-based approval
// every update is logged with an automatically generated inverse statement;
// the lab administrator reviews the log, approves good changes and
// disapproves bad ones, whose inverse statements are executed to roll them
// back — while the pending data stays visible in the meantime.
package main

import (
	"fmt"

	"bdbms"
)

func main() {
	db := bdbms.Open()
	defer db.Close()

	auth := db.Authorization()
	auth.AddToGroup("alice", "labmembers")
	auth.AddToGroup("bob", "labmembers")
	auth.AddToGroup("drsmith", "labadmins")
	auth.Grant("labmembers", "Gene", "SELECT", "INSERT", "UPDATE", "DELETE")
	auth.Grant("labadmins", "Gene", "ALL")

	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, GSequence SEQUENCE)`)
	db.MustExec(`INSERT INTO Gene VALUES ('JW0080', 'mraW', 'ATGATGGAAAA')`)
	db.MustExec(`START CONTENT APPROVAL ON Gene COLUMNS (GSequence, GName) APPROVED BY labadmins`)

	// Lab members update the data; the changes apply immediately but are
	// logged as pending.
	alice := db.Session("alice")
	bob := db.Session("bob")
	must(alice.Exec(`UPDATE Gene SET GSequence = 'ATGATGGAAAACCC' WHERE GID = 'JW0080'`))
	must(bob.Exec(`INSERT INTO Gene VALUES ('JW0099', 'bogus', 'NNNNN')`))

	fmt.Println("Pending operations (visible to the lab administrator):")
	pending := db.MustExec(`SHOW PENDING OPERATIONS FOR Gene`)
	fmt.Print(bdbms.Render(pending))

	fmt.Println("Pending data is already visible to readers:")
	fmt.Print(bdbms.Render(db.MustExec(`SELECT GID, GName FROM Gene ORDER BY GID`)))

	// The administrator approves Alice's update and disapproves Bob's insert;
	// disapproval executes the stored inverse statement.
	admin := db.Session("drsmith")
	aliceOp := pending.Rows[0].Values[0].Int()
	bobOp := pending.Rows[1].Values[0].Int()
	must(admin.Exec(fmt.Sprintf("APPROVE OPERATION %d", aliceOp)))
	must(admin.Exec(fmt.Sprintf("DISAPPROVE OPERATION %d", bobOp)))

	fmt.Println("After review (the bogus gene is gone, the curated update stays):")
	fmt.Print(bdbms.Render(db.MustExec(`SELECT GID, GName, GSequence FROM Gene ORDER BY GID`)))

	fmt.Println("Operation log summary:")
	for status, n := range auth.Summary("Gene") {
		fmt.Printf("  %-12s %d\n", status, n)
	}
}

func must(res *bdbms.Result, err error) *bdbms.Result {
	if err != nil {
		panic(err)
	}
	return res
}
