// Command provenance_tracking reproduces Figure 8 of the paper: a gene table
// assembled from multiple sources (copies from S2, a column overwritten by
// S3, a value updated by program P1), with provenance attached automatically
// by registered system agents and queried back with "what is the source of
// this value at time T?".
package main

import (
	"fmt"
	"time"

	"bdbms"
	"bdbms/internal/annotation"
	"bdbms/internal/provenance"
)

func main() {
	db := bdbms.Open()
	defer db.Close()

	db.MustExec(`CREATE TABLE Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, GSequence SEQUENCE)`)
	db.MustExec(`INSERT INTO Gene VALUES
		('JW0080', 'mraW', 'ATGATGGAAAA'),
		('JW0082', 'ftsI', 'ATGAAAGCAGC'),
		('JW0055', 'yabP', 'ATGAAAGTATC')`)

	prov := db.Provenance()
	prov.RegisterAgent("integrator")

	base := time.Date(2026, 1, 10, 0, 0, 0, 0, time.UTC)

	// The whole table was copied from source S2.
	mustAttach(prov, "integrator", "Gene",
		provenance.Record{Source: "S2", Action: provenance.ActionCopy, Time: base},
		annotation.RowsRegion("Gene", 1, 3, 3))
	// Later, the GSequence column was overwritten by source S3.
	mustAttach(prov, "integrator", "Gene",
		provenance.Record{Source: "S3", Action: provenance.ActionOverwrite, Time: base.AddDate(0, 1, 0)},
		annotation.ColumnRegion("Gene", 2, 3))
	// One value was then updated by program P1.
	mustAttach(prov, "integrator", "Gene",
		provenance.Record{Program: "P1", Action: provenance.ActionUpdate, Time: base.AddDate(0, 2, 0)},
		annotation.CellRegion("Gene", 1, 2))

	fmt.Println("Provenance history of Gene JW0080's sequence cell:")
	for _, e := range prov.ForCell("Gene", 1, 2) {
		src := e.Record.Source
		if src == "" {
			src = e.Record.Program
		}
		fmt.Printf("  %s  %-10s %s\n", e.Record.Time.Format("2006-01-02"), e.Record.Action, src)
	}

	for _, at := range []time.Time{base.AddDate(0, 0, 5), base.AddDate(0, 1, 5), base.AddDate(0, 3, 0)} {
		entry, err := prov.SourceAt("Gene", 1, 2, at)
		if err != nil {
			fmt.Printf("At %s: no provenance\n", at.Format("2006-01-02"))
			continue
		}
		src := entry.Record.Source
		if src == "" {
			src = entry.Record.Program
		}
		fmt.Printf("At %s the value came from: %s (%s)\n", at.Format("2006-01-02"), src, entry.Record.Action)
	}

	fmt.Printf("All sources that ever contributed to the cell: %v\n", prov.Sources("Gene", 1, 2))

	// Provenance propagates through A-SQL like any other annotation.
	res := db.MustExec(`SELECT GID, GSequence FROM Gene ANNOTATION(Provenance) WHERE GID = 'JW0080'`)
	fmt.Println("\nQuery answer with provenance propagated:")
	fmt.Print(bdbms.Render(res))
}

func mustAttach(prov *provenance.Manager, agent, table string, rec provenance.Record, region annotation.Region) {
	if _, err := prov.Attach(agent, table, rec, []annotation.Region{region}); err != nil {
		panic(err)
	}
}
