// Command annotation_curation reproduces the annotation-management scenario
// of Figures 2-7 of the paper: two gene tables imported from different
// databases, annotations A1-A3 and B1-B5 at cell / tuple / column
// granularity, archival of an obsolete annotation, and the "common genes with
// all their annotations" query that takes three manual SQL steps but a single
// A-SQL statement.
package main

import (
	"fmt"

	"bdbms"
)

func main() {
	db := bdbms.Open()
	defer db.Close()

	db.MustExec(`CREATE TABLE DB1_Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, GSequence SEQUENCE)`)
	db.MustExec(`CREATE TABLE DB2_Gene (GID TEXT NOT NULL PRIMARY KEY, GName TEXT, GSequence SEQUENCE)`)
	db.MustExec(`CREATE ANNOTATION TABLE GAnnotation ON DB1_Gene CATEGORY 'comment'`)
	db.MustExec(`CREATE ANNOTATION TABLE GAnnotation ON DB2_Gene CATEGORY 'comment'`)

	db.MustExec(`INSERT INTO DB1_Gene VALUES
		('JW0080', 'mraW', 'ATGATGGAAAA'),
		('JW0082', 'ftsI', 'ATGAAAGCAGC'),
		('JW0055', 'yabP', 'ATGAAAGTATC'),
		('JW0078', 'fruR', 'GTGAAACTGGA')`)
	db.MustExec(`INSERT INTO DB2_Gene VALUES
		('JW0080', 'mraW', 'ATGATGGAAAA'),
		('JW0041', 'fixB', 'ATGAACACGTT'),
		('JW0037', 'caiB', 'ATGGATCATCT'),
		('JW0027', 'ispH', 'ATGCAGATCCT'),
		('JW0055', 'yabP', 'ATGAAAGTATC')`)

	// A1..A3 over DB1_Gene, B1/B3/B5 over DB2_Gene (Figure 2).
	db.MustExec(`ADD ANNOTATION TO DB1_Gene.GAnnotation
		VALUE '<Annotation>These genes are published in Smith et al. 2006</Annotation>'
		ON (SELECT * FROM DB1_Gene WHERE GID = 'JW0080' OR GID = 'JW0082')`)
	db.MustExec(`ADD ANNOTATION TO DB1_Gene.GAnnotation
		VALUE '<Annotation>These genes were obtained from RegulonDB</Annotation>'
		ON (SELECT * FROM DB1_Gene WHERE GID = 'JW0082' OR GID = 'JW0055' OR GID = 'JW0078')`)
	db.MustExec(`ADD ANNOTATION TO DB1_Gene.GAnnotation
		VALUE '<Annotation>Involved in methyltransferase activity</Annotation>'
		ON (SELECT GSequence FROM DB1_Gene WHERE GID = 'JW0080')`)
	db.MustExec(`ADD ANNOTATION TO DB2_Gene.GAnnotation
		VALUE '<Annotation>Curated by user admin</Annotation>'
		ON (SELECT * FROM DB2_Gene WHERE GID = 'JW0080' OR GID = 'JW0041' OR GID = 'JW0037')`)
	db.MustExec(`ADD ANNOTATION TO DB2_Gene.GAnnotation
		VALUE '<Annotation>obtained from GenoBase</Annotation>'
		ON (SELECT GSequence FROM DB2_Gene)`)
	db.MustExec(`ADD ANNOTATION TO DB2_Gene.GAnnotation
		VALUE '<Annotation>This gene has an unknown function</Annotation>'
		ON (SELECT * FROM DB2_Gene WHERE GID = 'JW0080')`)

	fmt.Println("== The paper's example query: genes common to both databases,")
	fmt.Println("   with annotations consolidated from both (one A-SQL statement) ==")
	common := db.MustExec(`
		SELECT GID, GName, GSequence FROM DB1_Gene ANNOTATION(GAnnotation)
		INTERSECT
		SELECT GID, GName, GSequence FROM DB2_Gene ANNOTATION(GAnnotation)`)
	fmt.Print(bdbms.Render(common))

	fmt.Println("== Annotation-based filtering: only lineage annotations (FILTER) ==")
	lineage := db.MustExec(`SELECT GID, GSequence FROM DB2_Gene ANNOTATION(GAnnotation)
		FILTER ANN.VALUE LIKE '%GenoBase%'`)
	fmt.Print(bdbms.Render(lineage))

	fmt.Println("== The gene's function became known: archive annotation B5 ==")
	db.MustExec(`ARCHIVE ANNOTATION FROM DB2_Gene.GAnnotation
		ON (SELECT * FROM DB2_Gene WHERE GID = 'JW0080')`)
	after := db.MustExec(`SELECT GID FROM DB2_Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0080'`)
	fmt.Print(bdbms.Render(after))

	fmt.Println("== ... and restore it when the uncertainty returns ==")
	db.MustExec(`RESTORE ANNOTATION FROM DB2_Gene.GAnnotation
		ON (SELECT * FROM DB2_Gene WHERE GID = 'JW0080')`)
	restored := db.MustExec(`SELECT GID FROM DB2_Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0080'`)
	fmt.Print(bdbms.Render(restored))

	fmt.Printf("Annotation storage records under the %s scheme: %d\n",
		db.Annotations().StoreName(), db.Annotations().StorageRecords())
}
