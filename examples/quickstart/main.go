// Command quickstart shows the minimal bdbms workflow with the cursor API:
// create a gene table backed by a data file, load it through a prepared
// INSERT, annotate it at several granularities with ADD ANNOTATION, stream
// the annotated answer back with Query, group related updates in a Begin/
// Commit transaction (and show Rollback reverting one), then close and
// reopen the database to show that tables, indexes, annotations and every
// committed transaction are durable — Prepare/Query/Rows/Begin are the
// primary idioms, with MustExec/Render as the convenience layer for
// one-off statements.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bdbms"
)

func main() {
	// A non-empty DataFile makes the database durable: pages, a write-ahead
	// log and checkpoint files live next to each other, and reopening the
	// same path recovers the previous state.
	dir, err := os.MkdirTemp("", "bdbms-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dataFile := filepath.Join(dir, "genes.db")

	db, err := bdbms.OpenWith(bdbms.Options{DataFile: dataFile})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	db.MustExec(`CREATE TABLE Gene (
		GID TEXT NOT NULL PRIMARY KEY,
		GName TEXT,
		GSequence SEQUENCE)`)
	db.MustExec(`CREATE ANNOTATION TABLE GAnnotation ON Gene CATEGORY 'comment'`)

	// Prepared statements parse (and plan) once; each Exec re-binds the `?`
	// placeholders.
	ins, err := db.Prepare(`INSERT INTO Gene VALUES (?, ?, ?)`)
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range []struct{ id, name, seq string }{
		{"JW0080", "mraW", "ATGATGGAAAA"},
		{"JW0082", "ftsI", "ATGAAAGCAGC"},
		{"JW0055", "yabP", "ATGAAAGTATC"},
	} {
		if _, err := ins.Exec(g.id, g.name, g.seq); err != nil {
			log.Fatal(err)
		}
	}

	// Annotate a whole tuple ...
	db.MustExec(`ADD ANNOTATION TO Gene.GAnnotation
		VALUE '<Annotation>Curated by user admin</Annotation>'
		ON (SELECT * FROM Gene WHERE GID = 'JW0080')`)
	// ... and a single column across every row.
	db.MustExec(`ADD ANNOTATION TO Gene.GAnnotation
		VALUE '<Annotation>Sequences obtained from RegulonDB</Annotation>'
		ON (SELECT GSequence FROM Gene)`)

	// Query streams: each Next pulls one row through the executor pipeline,
	// with its propagated annotations attached, and the `?` binds the LIKE
	// pattern per execution.
	fmt.Println("Genes with their propagated annotations:")
	rows, err := db.Query(ctx, `SELECT GID, GName PROMOTE (GSequence)
		FROM Gene ANNOTATION(GAnnotation)
		WHERE GID LIKE ?`, "JW%")
	if err != nil {
		log.Fatal(err)
	}
	for rows.Next() {
		var gid, name string
		if err := rows.Scan(&gid, &name); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s | %s\n", gid, name)
		for _, ann := range rows.Row().AnnotationsFlat() {
			fmt.Printf("    [%s by %s] %s\n", ann.AnnTable, ann.Author, ann.PlainBody())
		}
	}
	rows.Close()
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}

	// Annotation-based querying: which genes carry a curation note? The
	// AWHERE condition binds its pattern as a parameter too.
	curated, err := db.Query(ctx, `SELECT GID FROM Gene ANNOTATION(GAnnotation)
		AWHERE ANN.VALUE LIKE ?`, "%Curated%")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Genes with a curation annotation:")
	for curated.Next() {
		var gid string
		if err := curated.Scan(&gid); err != nil {
			log.Fatal(err)
		}
		fmt.Println(gid)
	}
	curated.Close()
	if err := curated.Err(); err != nil {
		log.Fatal(err)
	}

	// Multi-statement transactions: both updates commit atomically, and a
	// rolled-back transaction — here guarded by a deliberate ROLLBACK —
	// leaves no trace, however many statements it ran.
	tx, err := db.Begin(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE Gene SET GName = 'mraW-v2' WHERE GID = 'JW0080'`); err != nil {
		log.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO Gene VALUES ('JW0090', 'ftsW', 'ATGCGT')`); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	tx, err = db.Begin(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tx.Exec(`DELETE FROM Gene WHERE GID LIKE 'JW%'`); err != nil {
		log.Fatal(err)
	}
	if err := tx.Rollback(); err != nil { // nothing was really deleted
		log.Fatal(err)
	}

	// The materializing compatibility layer is still there for one-offs.
	fmt.Println("Full grid via Render:")
	fmt.Print(bdbms.Render(db.MustExec(`SELECT GID, GName FROM Gene ORDER BY GID`)))

	// Close checkpoints the database; reopening the same data file recovers
	// tables, rows, indexes and annotations exactly as they were.
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	reopened, err := bdbms.OpenWith(bdbms.Options{DataFile: dataFile})
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	fmt.Println("After close and reopen, annotations included:")
	again, err := reopened.Query(ctx, `SELECT GID, GName FROM Gene ANNOTATION(GAnnotation) WHERE GID = ?`, "JW0080")
	if err != nil {
		log.Fatal(err)
	}
	defer again.Close()
	for again.Next() {
		var gid, name string
		if err := again.Scan(&gid, &name); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s | %s\n", gid, name)
		for _, ann := range again.Row().AnnotationsFlat() {
			fmt.Printf("    [%s by %s] %s\n", ann.AnnTable, ann.Author, ann.PlainBody())
		}
	}
	if err := again.Err(); err != nil {
		log.Fatal(err)
	}
}
