// Command quickstart shows the minimal bdbms workflow: create a gene table,
// attach an annotation table, insert data, annotate it at several
// granularities with ADD ANNOTATION, and query it back with the A-SQL
// ANNOTATION clause so annotations propagate with the answer.
package main

import (
	"fmt"

	"bdbms"
)

func main() {
	db := bdbms.Open()
	defer db.Close()

	db.MustExec(`CREATE TABLE Gene (
		GID TEXT NOT NULL PRIMARY KEY,
		GName TEXT,
		GSequence SEQUENCE)`)
	db.MustExec(`CREATE ANNOTATION TABLE GAnnotation ON Gene CATEGORY 'comment'`)

	db.MustExec(`INSERT INTO Gene VALUES
		('JW0080', 'mraW', 'ATGATGGAAAA'),
		('JW0082', 'ftsI', 'ATGAAAGCAGC'),
		('JW0055', 'yabP', 'ATGAAAGTATC')`)

	// Annotate a whole tuple ...
	db.MustExec(`ADD ANNOTATION TO Gene.GAnnotation
		VALUE '<Annotation>Curated by user admin</Annotation>'
		ON (SELECT * FROM Gene WHERE GID = 'JW0080')`)
	// ... and a single column across every row.
	db.MustExec(`ADD ANNOTATION TO Gene.GAnnotation
		VALUE '<Annotation>Sequences obtained from RegulonDB</Annotation>'
		ON (SELECT GSequence FROM Gene)`)

	res := db.MustExec(`SELECT GID, GName PROMOTE (GSequence)
		FROM Gene ANNOTATION(GAnnotation)
		ORDER BY GID`)
	fmt.Println("Genes with their propagated annotations:")
	fmt.Print(bdbms.Render(res))

	// Annotation-based querying: which genes carry a curation note?
	curated := db.MustExec(`SELECT GID FROM Gene ANNOTATION(GAnnotation)
		AWHERE ANN.VALUE LIKE '%Curated%'`)
	fmt.Println("Genes with a curation annotation:")
	fmt.Print(bdbms.Render(curated))
}
