package bdbms_test

// Storage-fault acceptance tests over the public API: every corruption
// class — bit flip, torn page, misdirected (swapped) write, truncated tail,
// corrupt superblock — must be DETECTED, either when Open reads the page or
// by Verify; a corrupted database must never answer queries differently
// from the oracle without an error anywhere. And an online Backup taken
// while writers are racing must open and verify as a consistent database.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"bdbms"
	"bdbms/internal/pager"
)

// buildCorruptionSeed writes a multi-page database and returns its directory.
func buildCorruptionSeed(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	db, err := bdbms.OpenWith(bdbms.Options{DataFile: filepath.Join(dir, "genes.db")})
	if err != nil {
		t.Fatal(err)
	}
	seedStatements(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func seedStatements(t *testing.T, db *bdbms.DB) {
	t.Helper()
	for _, stmt := range persistWorkload {
		db.MustExec(stmt)
	}
	// Bulk rows so the heap spans several pages (a swap needs two).
	ins, err := db.Prepare(`INSERT INTO Gene VALUES (?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		if _, err := ins.Exec(fmt.Sprintf("BULK%04d", i), fmt.Sprintf("bulk-gene-%d-%032d", i, i), 100+i); err != nil {
			t.Fatal(err)
		}
	}
}

// copyDBFiles clones the four database files of src into a fresh directory.
func copyDBFiles(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		out.Close()
	}
	return dst
}

// patchFile applies fn to the file's bytes in place.
func patchFile(t *testing.T, path string, fn func(data []byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func frameStart(id int) int { return int(pager.FrameOffset(pager.PageID(id))) }

// corruptionOracle answers the query battery from an uncorrupted database.
func corruptionOracle(t *testing.T) *bdbms.DB {
	t.Helper()
	oracle := bdbms.Open()
	seedStatements(t, oracle)
	return oracle
}

var corruptionBattery = []string{
	`SELECT GID, GName, GLen FROM Gene WHERE GLen > 900`,
	`SELECT COUNT(*) FROM Gene`,
	`SELECT GID FROM Gene WHERE GLen = 150`, // secondary-index probe
	`SELECT GID, GLen FROM Gene ANNOTATION(*) WHERE GLen > 900`,
}

// TestCorruptionNeverSilent corrupts a database file in every physical way
// a disk can and asserts the one invariant that matters: NO silent wrong
// results. Either Open fails with a diagnostic naming the corruption, or
// the database opens, answers every query identically to the oracle, and
// Verify pinpoints the damage.
func TestCorruptionNeverSilent(t *testing.T) {
	seed := buildCorruptionSeed(t)

	classes := []struct {
		name    string
		corrupt func(t *testing.T, dataFile string)
	}{
		{"bitflip-page0", func(t *testing.T, f string) {
			patchFile(t, f, func(d []byte) []byte {
				d[frameStart(0)+pager.PageHeaderSize+100] ^= 0x01
				return d
			})
		}},
		{"torn-page", func(t *testing.T, f string) {
			// The back half of page 1's payload reverts to zeros while the
			// header (checksummed for the full write) survives — what a
			// power cut mid-write leaves behind.
			patchFile(t, f, func(d []byte) []byte {
				start := frameStart(1) + pager.PageHeaderSize + pager.PageSize/2
				for i := 0; i < pager.PageSize/2; i++ {
					d[start+i] = 0
				}
				return d
			})
		}},
		{"swapped-pages", func(t *testing.T, f string) {
			// Two internally intact frames land at each other's offsets: a
			// misdirected write. Checksums pass; the page-ID stamp must not.
			patchFile(t, f, func(d []byte) []byte {
				a, b := frameStart(0), frameStart(1)
				for i := 0; i < pager.PageFrameSize; i++ {
					d[a+i], d[b+i] = d[b+i], d[a+i]
				}
				return d
			})
		}},
		{"truncated-tail", func(t *testing.T, f string) {
			fi, err := os.Stat(f)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(f, fi.Size()-pager.PageFrameSize/2); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupt-superblock", func(t *testing.T, f string) {
			patchFile(t, f, func(d []byte) []byte {
				d[3] ^= 0xFF // inside the magic
				return d
			})
		}},
	}

	oracle := corruptionOracle(t)
	defer oracle.Close()

	for _, class := range classes {
		class := class
		t.Run(class.name, func(t *testing.T) {
			dir := copyDBFiles(t, seed)
			dataFile := filepath.Join(dir, "genes.db")
			class.corrupt(t, dataFile)

			db, err := bdbms.OpenWith(bdbms.Options{DataFile: dataFile})
			if err != nil {
				// Detected at Open: the error must be a diagnostic, not a
				// crash — and for page-level damage it must identify the
				// corruption class.
				t.Logf("detected at open: %v", err)
				switch class.name {
				case "bitflip-page0", "torn-page", "swapped-pages", "corrupt-superblock":
					if !errors.Is(err, pager.ErrPageCorrupt) {
						t.Errorf("open error does not wrap ErrPageCorrupt: %v", err)
					}
				}
				return
			}
			defer db.Close()

			// The database opened: every answer must match the oracle...
			for _, q := range corruptionBattery {
				wr, err := oracle.Query(context.Background(), q)
				if err != nil {
					t.Fatalf("oracle %q: %v", q, err)
				}
				want := renderRows(t, wr)
				wr.Close()
				gr, err := db.Query(context.Background(), q)
				if err != nil {
					// An error is an acceptable outcome; silence is not.
					t.Logf("query %q fails loudly: %v", q, err)
					continue
				}
				got := renderRows(t, gr)
				gr.Close()
				if want != got {
					t.Errorf("SILENT WRONG RESULT for %q:\n got: %s\nwant: %s", q, got, want)
				}
			}
			// ...and Verify must still find the damage.
			rep, err := db.Verify()
			if err != nil {
				t.Fatalf("verify: %v", err)
			}
			if rep.Clean() {
				t.Errorf("%s: database opened, queries pass, and Verify is clean — corruption went undetected", class.name)
			}
		})
	}
}

// TestBackupDuringLiveWrites races Backup against concurrent writers: every
// snapshot must open as a database that verifies clean and whose rows are
// statement-atomic — a prefix of each writer's inserts, never a torn row.
func TestBackupDuringLiveWrites(t *testing.T) {
	dir := t.TempDir()
	db, err := bdbms.OpenWith(bdbms.Options{DataFile: filepath.Join(dir, "genes.db")})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, stmt := range persistWorkload {
		db.MustExec(stmt)
	}

	const writers = 3
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				stmt := fmt.Sprintf(`INSERT INTO Gene VALUES ('W%d-%04d', 'writer%d', %d)`, w, i, w, 10000+i)
				if _, err := db.Exec(stmt); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}()
	}

	dests := make([]string, 3)
	for i := range dests {
		dests[i] = filepath.Join(t.TempDir(), fmt.Sprintf("snap%d", i))
		if err := db.Backup(dests[i]); err != nil {
			t.Fatalf("backup %d during live writes: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	for i, dest := range dests {
		snap, err := bdbms.OpenWith(bdbms.Options{DataFile: filepath.Join(dest, "genes.db")})
		if err != nil {
			t.Fatalf("snapshot %d does not open: %v", i, err)
		}
		rep, err := snap.Verify()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Errorf("snapshot %d does not verify:\n%s", i, rep)
		}
		// Statement atomicity across the snapshot boundary: each writer's
		// rows are a dense prefix (IDs 0..k-1), and every row is complete.
		rows, err := snap.Query(context.Background(), `SELECT GID, GName, GLen FROM Gene`)
		if err != nil {
			t.Fatal(err)
		}
		perWriter := make(map[string]int)
		for rows.Next() {
			row := rows.Row()
			gid := row.Values[0].Text()
			var w, n int
			if _, err := fmt.Sscanf(gid, "W%d-%04d", &w, &n); err != nil {
				continue // a seed row
			}
			if want := fmt.Sprintf("writer%d", w); row.Values[1].Text() != want || row.Values[2].IsNull() {
				t.Errorf("snapshot %d: torn row %s: %v", i, gid, row.Values)
			}
			perWriter[fmt.Sprint(w)]++
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		rows.Close()
		// Dense-prefix check: count k implies IDs 0..k-1 all present; probe
		// the last one of each writer.
		for w, k := range perWriter {
			res, err := snap.Exec(fmt.Sprintf(`SELECT GID FROM Gene WHERE GID = 'W%s-%04d'`, w, k-1))
			if err != nil || len(res.Rows) != 1 {
				t.Errorf("snapshot %d: writer %s has %d rows but the last ID is missing (err=%v)", i, w, k, err)
			}
		}
		snap.Close()
	}

	// The source itself still verifies after the race.
	rep, err := db.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("source does not verify after concurrent backups:\n%s", rep)
	}
}
